//! Deterministic and random graph generators.
//!
//! These serve three purposes: hand-checkable fixtures for tests (path, cycle,
//! star, complete, grid), the Erdős–Rényi family `G(n, p)` that is the
//! stationary law of edge-MEG, and random geometric graphs which are the
//! stationary law of geometric-MEG once node positions are fixed.

use crate::{AdjacencyList, Node};
use rand::Rng;

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(n);
    for u in 1..n {
        g.add_edge_unchecked((u - 1) as Node, u as Node);
    }
    g
}

/// Cycle graph on `n ≥ 3` nodes (for `n < 3` it degenerates to a path).
pub fn cycle(n: usize) -> AdjacencyList {
    let mut g = path(n);
    if n >= 3 {
        g.add_edge_unchecked((n - 1) as Node, 0);
    }
    g
}

/// Star graph: node 0 is the center, nodes `1..=leaves` are leaves.
pub fn star(leaves: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(leaves + 1);
    for u in 1..=leaves {
        g.add_edge_unchecked(0, u as Node);
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge_unchecked(u as Node, v as Node);
        }
    }
    g
}

/// Two-dimensional grid graph with `rows × cols` nodes, 4-neighborhood.
/// Node `(r, c)` has index `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(rows * cols);
    let idx = |r: usize, c: usize| (r * cols + c) as Node;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge_unchecked(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge_unchecked(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// Complete bipartite graph `K_{a,b}`; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> AdjacencyList {
    let mut g = AdjacencyList::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge_unchecked(u as Node, (a + v) as Node);
        }
    }
    g
}

/// Erdős–Rényi random graph `G(n, p)`: every unordered pair is an edge
/// independently with probability `p`.
///
/// Uses geometric "skip" sampling over the lexicographically ordered pairs, so
/// the cost is `O(n + m)` rather than `O(n²)` — essential for the sparse
/// regimes (`p = Θ(log n / n)`) the paper cares about.
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> AdjacencyList {
    assert!((0.0..=1.0).contains(&p), "p={p} must lie in [0, 1]");
    let mut g = AdjacencyList::new(n);
    if n < 2 || p == 0.0 {
        return g;
    }
    if p >= 1.0 {
        return complete(n);
    }
    // Iterate over pairs (u, v), u < v, in lexicographic order, skipping ahead
    // by geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut idx: u64 = 0;
    loop {
        // Draw the gap to the next selected pair: floor(ln(U)/ln(1-p)).
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(v) => v,
            None => break,
        };
        if idx >= total_pairs {
            break;
        }
        let (a, b) = pair_from_index(n as u64, idx);
        g.add_edge_unchecked(a as Node, b as Node);
        idx += 1;
        if idx >= total_pairs {
            break;
        }
    }
    g
}

/// Maps a linear index in `0 .. n(n-1)/2` to the unordered pair `(a, b)` with
/// `a < b`, in lexicographic order `(0,1), (0,2), …, (0,n-1), (1,2), …`.
///
/// This is the canonical pair numbering shared by the Erdős–Rényi generator
/// here and by the sparse edge-MEG engine (which skip-samples edge births over
/// the same index space).
pub fn pair_from_index(n: u64, idx: u64) -> (u64, u64) {
    debug_assert!(idx < n * (n - 1) / 2);
    // Row a starts at offset a*n - a*(a+1)/2 - a... derive by solving the
    // quadratic; use floating point for the initial guess then correct.
    let mut a = {
        let nf = n as f64;
        let k = idx as f64;
        let guess = nf - 0.5 - ((nf - 0.5) * (nf - 0.5) - 2.0 * k).max(0.0).sqrt();
        guess.floor().max(0.0) as u64
    };
    // Correct the guess (floating point can be off by one in either direction).
    let row_start = |a: u64| a * n - a * (a + 1) / 2;
    while a > 0 && row_start(a) > idx {
        a -= 1;
    }
    while a + 1 < n && row_start(a + 1) <= idx {
        a += 1;
    }
    let b = a + 1 + (idx - row_start(a));
    (a, b)
}

/// Inverse of [`pair_from_index`]: the linear index of the unordered pair
/// `{a, b}` (order of the arguments does not matter; they must differ).
pub fn index_of_pair(n: u64, a: u64, b: u64) -> u64 {
    assert!(a != b && a < n && b < n, "invalid pair ({a},{b}) for n={n}");
    let (a, b) = if a < b { (a, b) } else { (b, a) };
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

/// Random geometric graph: nodes at the given 2-D positions, an edge whenever
/// two nodes are at Euclidean distance ≤ `radius`.
///
/// Uses a uniform cell grid with cell side `radius`, so the cost is
/// `O(n + #candidate pairs)` instead of `O(n²)`.
pub fn geometric_from_positions(positions: &[(f64, f64)], radius: f64) -> AdjacencyList {
    let n = positions.len();
    let mut g = AdjacencyList::new(n);
    if n == 0 || radius <= 0.0 {
        return g;
    }
    let r2 = radius * radius;
    let min_x = positions.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let min_y = positions.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let max_x = positions
        .iter()
        .map(|p| p.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_y = positions
        .iter()
        .map(|p| p.1)
        .fold(f64::NEG_INFINITY, f64::max);
    let cols = (((max_x - min_x) / radius).floor() as usize + 1).max(1);
    let rows = (((max_y - min_y) / radius).floor() as usize + 1).max(1);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = (((p.0 - min_x) / radius).floor() as usize).min(cols - 1);
        let cy = (((p.1 - min_y) / radius).floor() as usize).min(rows - 1);
        (cx, cy)
    };
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); cols * rows];
    for (i, &p) in positions.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cols + cx].push(i as Node);
    }
    for cy in 0..rows {
        for cx in 0..cols {
            let here = &buckets[cy * cols + cx];
            // Pairs within the cell.
            for (i, &u) in here.iter().enumerate() {
                for &v in &here[i + 1..] {
                    if dist2(positions[u as usize], positions[v as usize]) <= r2 {
                        g.add_edge_unchecked(u.min(v), u.max(v));
                    }
                }
            }
            // Pairs with the 4 "forward" neighboring cells (E, SW, S, SE) so
            // each unordered cell pair is visited exactly once.
            let neighbor_cells = [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)];
            for (dx, dy) in neighbor_cells {
                let nx = cx as isize + dx;
                let ny = cy as isize + dy;
                if nx < 0 || ny < 0 || nx as usize >= cols || ny as usize >= rows {
                    continue;
                }
                let there = &buckets[ny as usize * cols + nx as usize];
                for &u in here {
                    for &v in there {
                        if dist2(positions[u as usize], positions[v as usize]) <= r2 {
                            g.add_edge_unchecked(u.min(v), u.max(v));
                        }
                    }
                }
            }
        }
    }
    g
}

#[inline]
fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn deterministic_families_have_expected_sizes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(cycle(2).num_edges(), 1);
        assert_eq!(star(7).num_edges(), 7);
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(grid2d(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(complete_bipartite(3, 4).num_edges(), 12);
    }

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..(n * (n - 1) / 2) {
            let (a, b) = pair_from_index(n, idx);
            assert!(a < b && b < n, "bad pair ({a},{b}) at {idx}");
            assert!(seen.insert((a, b)), "duplicate pair ({a},{b})");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn index_of_pair_is_the_inverse_of_pair_from_index() {
        let n = 9u64;
        for idx in 0..(n * (n - 1) / 2) {
            let (a, b) = pair_from_index(n, idx);
            assert_eq!(index_of_pair(n, a, b), idx);
            assert_eq!(index_of_pair(n, b, a), idx);
        }
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
        assert_eq!(erdos_renyi(1, 0.5, &mut rng).num_edges(), 0);
    }

    #[test]
    fn erdos_renyi_edge_count_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 400;
        let p = 0.02;
        let trials = 20;
        let mut total = 0usize;
        for _ in 0..trials {
            total += erdos_renyi(n, p, &mut rng).num_edges();
        }
        let mean = total as f64 / trials as f64;
        let expected = p * (n * (n - 1) / 2) as f64;
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "mean edges {mean} vs expected {expected}"
        );
    }

    #[test]
    fn geometric_graph_matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 120;
        let positions: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0)))
            .collect();
        let radius = 1.3;
        let fast = geometric_from_positions(&positions, radius);
        // Brute force reference.
        let mut slow = AdjacencyList::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if dist2(positions[u], positions[v]) <= radius * radius {
                    slow.add_edge(u as Node, v as Node);
                }
            }
        }
        assert_eq!(fast.num_edges(), slow.num_edges());
        for u in 0..n as Node {
            let mut a = fast.neighbors(u).to_vec();
            let mut b = slow.neighbors(u).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "neighbors of {u}");
        }
    }

    #[test]
    fn geometric_graph_degenerate_inputs() {
        assert_eq!(geometric_from_positions(&[], 1.0).num_nodes(), 0);
        let one = geometric_from_positions(&[(0.0, 0.0)], 1.0);
        assert_eq!(one.num_nodes(), 1);
        assert_eq!(one.num_edges(), 0);
        let zero_radius = geometric_from_positions(&[(0.0, 0.0), (0.0, 0.0)], 0.0);
        assert_eq!(zero_radius.num_edges(), 0);
    }

    #[test]
    fn geometric_graph_same_position_nodes_connect() {
        let g = geometric_from_positions(&[(1.0, 1.0), (1.0, 1.0), (5.0, 5.0)], 0.5);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1));
    }
}
