//! # meg-graph
//!
//! Static-graph substrate for the `meg` workspace.
//!
//! Every snapshot `G_t` of a Markovian evolving graph is an ordinary
//! undirected graph over the node set `[n] = {0, …, n-1}`. This crate provides
//! the data structures and algorithms those snapshots need:
//!
//! * [`NodeSet`] — a word-packed bitset over `[n]`, used for informed sets and
//!   neighborhoods;
//! * [`PairBits`] — a word-packed bitset over the `n(n−1)/2` unordered node
//!   pairs, the alive-flag representation of the dense edge-MEG;
//! * [`AdjacencyList`] and [`Csr`] — mutable and frozen graph representations,
//!   both implementing the [`Graph`] trait;
//! * traversals and global metrics: [`bfs`], [`connectivity`], [`diameter`],
//!   [`degree`], [`metrics`];
//! * [`expansion`] — measurement of the parameterized `(h, k)`-node-expansion
//!   that drives the paper's flooding-time bounds;
//! * [`generators`] — classic random and deterministic graph families used as
//!   baselines and test fixtures (Erdős–Rényi, random geometric, grid, ring,
//!   star, complete, …).
//!
//! The crate is deliberately free of any "evolving" notion: dynamics live in
//! `meg-core` and the model crates.
//!
//! ## Example
//!
//! ```
//! use meg_graph::{bfs, connectivity, AdjacencyList, Graph, NodeSet};
//!
//! // A 5-node path 0–1–2–3–4.
//! let g = AdjacencyList::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
//! assert_eq!(g.num_edges(), 4);
//! assert!(connectivity::is_connected(&g));
//! assert_eq!(bfs::distances(&g, 0)[4], 4);
//!
//! // Node sets with constant-time membership over a fixed universe.
//! let mut informed = NodeSet::new(5);
//! informed.insert(0);
//! let frontier = meg_graph::out_neighborhood(&g, &informed);
//! assert_eq!(frontier.iter().collect::<Vec<_>>(), vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bfs;
pub mod connectivity;
pub mod csr;
pub mod degree;
pub mod diameter;
pub mod expansion;
pub mod generators;
pub mod metrics;
pub mod nodeset;
pub mod pair_bits;
pub mod snapshot_buf;

pub use adjacency::AdjacencyList;
pub use csr::Csr;
pub use nodeset::NodeSet;
pub use pair_bits::PairBits;
pub use snapshot_buf::{DeltaOutcome, SnapshotBuf};

/// A node identifier. Nodes are always the integers `0 .. n`.
pub type Node = u32;

/// Minimal read-only interface shared by all static graph representations.
///
/// The trait is object-safe so higher layers (the flooding engine, the
/// expansion analyzer) can operate on any snapshot representation.
pub trait Graph {
    /// Number of nodes `n`. Nodes are `0 .. n`.
    fn num_nodes(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Invokes `f` on every neighbor of `u`.
    ///
    /// The same neighbor is never reported twice and `u` itself is never
    /// reported (simple graphs only).
    fn for_each_neighbor(&self, u: Node, f: &mut dyn FnMut(Node));

    /// Degree of node `u`.
    fn degree(&self, u: Node) -> usize {
        let mut d = 0usize;
        self.for_each_neighbor(u, &mut |_| d += 1);
        d
    }

    /// Returns `true` if `{u, v}` is an edge.
    fn has_edge(&self, u: Node, v: Node) -> bool {
        let mut found = false;
        self.for_each_neighbor(u, &mut |w| {
            if w == v {
                found = true;
            }
        });
        found
    }

    /// Collects the neighbors of `u` into a vector (convenience, allocates).
    fn neighbors_vec(&self, u: Node) -> Vec<Node> {
        let mut out = Vec::with_capacity(self.degree(u));
        self.for_each_neighbor(u, &mut |v| out.push(v));
        out
    }

    /// Borrows the neighbors of `u` as a contiguous slice when the
    /// representation stores them contiguously ([`AdjacencyList`], [`Csr`],
    /// [`SnapshotBuf`]); `None` otherwise.
    ///
    /// Hot loops should go through [`visit_neighbors`], which takes this fast
    /// path when available and falls back to
    /// [`for_each_neighbor`](Graph::for_each_neighbor) (a dynamic call per
    /// neighbor) when it is not. The slice order **must** equal the
    /// `for_each_neighbor` order — RNG-consuming consumers rely on it.
    fn neighbor_slice(&self, _u: Node) -> Option<&[Node]> {
        None
    }
}

/// Invokes `f` on every neighbor of `u`, using the contiguous
/// [`Graph::neighbor_slice`] fast path when the representation provides one.
#[inline]
pub fn visit_neighbors<G: Graph + ?Sized>(g: &G, u: Node, mut f: impl FnMut(Node)) {
    match g.neighbor_slice(u) {
        Some(slice) => {
            for &v in slice {
                f(v);
            }
        }
        None => g.for_each_neighbor(u, &mut f),
    }
}

/// Out-neighborhood `N(I)` of a node set `I`: all nodes *outside* `I` adjacent
/// to some node of `I` (Section 2 of the paper).
pub fn out_neighborhood<G: Graph + ?Sized>(g: &G, set: &NodeSet) -> NodeSet {
    let mut out = NodeSet::new(g.num_nodes());
    for u in set.iter() {
        visit_neighbors(g, u, |v| {
            if !set.contains(v) {
                out.insert(v);
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_neighborhood_of_path() {
        // 0 - 1 - 2 - 3
        let g = generators::path(4);
        let mut s = NodeSet::new(4);
        s.insert(1);
        let nb = out_neighborhood(&g, &s);
        assert!(nb.contains(0));
        assert!(nb.contains(2));
        assert!(!nb.contains(1));
        assert!(!nb.contains(3));
        assert_eq!(nb.len(), 2);
    }

    #[test]
    fn out_neighborhood_excludes_members() {
        let g = generators::complete(5);
        let mut s = NodeSet::new(5);
        s.insert(0);
        s.insert(1);
        let nb = out_neighborhood(&g, &s);
        assert_eq!(nb.len(), 3);
        for u in 2..5 {
            assert!(nb.contains(u));
        }
    }

    #[test]
    fn default_degree_and_has_edge() {
        let g = generators::cycle(6);
        assert_eq!(Graph::degree(&g, 0), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 5));
        assert!(!g.has_edge(0, 3));
    }
}
