//! Word-packed bitset over the node universe `[n]`.
//!
//! Flooding manipulates node sets on every time step: the informed set `I_t`,
//! the newly informed frontier, and out-neighborhoods `N(I_t)`. A packed
//! bitset gives O(1) membership tests, O(n/64) unions, and cache-friendly
//! iteration — far better constants than a `HashSet<u32>` for the dense sets
//! this workload produces.

use crate::Node;

/// A set of nodes drawn from a fixed universe `0 .. universe`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl NodeSet {
    /// Creates an empty set over the universe `0 .. universe`.
    pub fn new(universe: usize) -> Self {
        NodeSet {
            words: vec![0u64; universe.div_ceil(64)],
            universe,
            len: 0,
        }
    }

    /// Creates a set containing every node of the universe.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear the bits beyond `universe` in the last word.
        let rem = universe % 64;
        if rem != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        s.len = universe;
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_iter<I: IntoIterator<Item = Node>>(universe: usize, nodes: I) -> Self {
        let mut s = Self::new(universe);
        for u in nodes {
            s.insert(u);
        }
        s
    }

    /// Builds a singleton set.
    pub fn singleton(universe: usize, node: Node) -> Self {
        let mut s = Self::new(universe);
        s.insert(node);
        s
    }

    /// Size of the universe the set draws from.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of nodes currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if the set contains every node of its universe.
    pub fn is_full(&self) -> bool {
        self.len == self.universe
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, node: Node) -> bool {
        let i = node as usize;
        debug_assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Inserts a node; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, node: Node) -> bool {
        let i = node as usize;
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes a node; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, node: Node) -> bool {
        let i = node as usize;
        assert!(
            i < self.universe,
            "node {i} outside universe {}",
            self.universe
        );
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every node.
    pub fn clear(&mut self) {
        for w in self.words.iter_mut() {
            *w = 0;
        }
        self.len = 0;
    }

    /// In-place union: `self ← self ∪ other`. Panics if universes differ.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut count = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= *b;
            count += a.count_ones() as usize;
        }
        self.len = count;
    }

    /// In-place intersection: `self ← self ∩ other`. Panics if universes differ.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut count = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= *b;
            count += a.count_ones() as usize;
        }
        self.len = count;
    }

    /// In-place difference: `self ← self \ other`. Panics if universes differ.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut count = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !*b;
            count += a.count_ones() as usize;
        }
        self.len = count;
    }

    /// Returns the complement of the set within its universe.
    pub fn complement(&self) -> NodeSet {
        let mut out = NodeSet::full(self.universe);
        out.difference_with(self);
        out
    }

    /// Number of nodes in `self ∩ other` without materialising it.
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Returns `true` if every node of `self` is in `other`.
    pub fn is_subset_of(&self, other: &NodeSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the nodes of the set in increasing order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects the set into a sorted vector of nodes.
    pub fn to_vec(&self) -> Vec<Node> {
        self.iter().collect()
    }
}

/// Iterator over the members of a [`NodeSet`] in increasing order.
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl<'a> Iterator for NodeSetIter<'a> {
    type Item = Node;

    fn next(&mut self) -> Option<Node> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.word_idx * 64 + bit) as Node);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = Node;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn empty_and_full() {
        let e = NodeSet::new(100);
        assert_eq!(e.len(), 0);
        assert!(e.is_empty());
        let f = NodeSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.is_full());
        assert!(f.contains(0));
        assert!(f.contains(99));
    }

    #[test]
    fn full_clears_tail_bits() {
        let f = NodeSet::full(67);
        assert_eq!(f.len(), 67);
        assert_eq!(f.iter().count(), 67);
        assert_eq!(f.iter().max(), Some(66));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
        assert!(!s.contains(64));
    }

    #[test]
    fn set_algebra_matches_hashset() {
        let a_items = [1u32, 5, 9, 63, 64, 65, 99];
        let b_items = [5u32, 64, 80, 99];
        let mut a = NodeSet::from_iter(100, a_items.iter().copied());
        let b = NodeSet::from_iter(100, b_items.iter().copied());
        let ha: HashSet<u32> = a_items.iter().copied().collect();
        let hb: HashSet<u32> = b_items.iter().copied().collect();

        assert_eq!(a.intersection_len(&b), ha.intersection(&hb).count());

        let mut u = a.clone();
        u.union_with(&b);
        let hu: HashSet<u32> = ha.union(&hb).copied().collect();
        assert_eq!(u.len(), hu.len());
        assert_eq!(u.to_vec().into_iter().collect::<HashSet<_>>(), hu);

        let mut d = a.clone();
        d.difference_with(&b);
        let hd: HashSet<u32> = ha.difference(&hb).copied().collect();
        assert_eq!(d.to_vec().into_iter().collect::<HashSet<_>>(), hd);

        a.intersect_with(&b);
        let hi: HashSet<u32> = ha.intersection(&hb).copied().collect();
        assert_eq!(a.to_vec().into_iter().collect::<HashSet<_>>(), hi);
    }

    #[test]
    fn complement_partitions_universe() {
        let s = NodeSet::from_iter(70, [0u32, 3, 69]);
        let c = s.complement();
        assert_eq!(s.len() + c.len(), 70);
        assert_eq!(s.intersection_len(&c), 0);
        assert!(!c.contains(0));
        assert!(c.contains(1));
        assert!(!c.contains(69));
    }

    #[test]
    fn subset_checks() {
        let a = NodeSet::from_iter(50, [1u32, 2, 3]);
        let b = NodeSet::from_iter(50, [1u32, 2, 3, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = NodeSet::from_iter(200, [150u32, 3, 64, 127, 128]);
        let v = s.to_vec();
        assert_eq!(v, vec![3, 64, 127, 128, 150]);
    }

    #[test]
    fn singleton() {
        let s = NodeSet::singleton(10, 7);
        assert_eq!(s.len(), 1);
        assert!(s.contains(7));
    }

    #[test]
    #[should_panic]
    fn insert_out_of_universe_panics() {
        let mut s = NodeSet::new(10);
        s.insert(10);
    }
}
