//! Reusable flat CSR snapshot buffer — the allocation-free hot path of the
//! evolving-graph pipeline.
//!
//! Every `EvolvingGraph::advance()` produces a fresh snapshot `G_t`. Building
//! an [`AdjacencyList`] for that (one heap `Vec` per
//! node) costs `Θ(n)` small allocations per time step, which dominates the
//! simulation cost in exactly the large-`n` regimes the paper's theorems are
//! about. [`SnapshotBuf`] replaces it with a model-owned, **reusable** flat
//! CSR (compressed sparse row) buffer:
//!
//! * `offsets: Vec<usize>` (`n + 1` entries) and `targets: Vec<Node>`
//!   (`2·m` entries) hold the finished snapshot — two contiguous arrays,
//!   cache-friendly neighbor scans, no per-node storage;
//! * `edges: Vec<(Node, Node)>` is the staging area producers push into, and
//!   `deg: Vec<usize>` is the counting-sort scratch;
//! * [`begin`](SnapshotBuf::begin) / [`push_edge`](SnapshotBuf::push_edge) /
//!   [`build`](SnapshotBuf::build) only ever `clear()` and refill these four
//!   vectors, so once their capacities have grown to the high-water mark of
//!   the run (**warm-up**), a rebuild performs **zero** heap allocations.
//!
//! The build is a stable counting sort over the staged edge stream: node
//! `u`'s neighbors end up in exactly the order edges incident to `u` were
//! pushed. This matches the push order of the `AdjacencyList` construction it
//! replaces, which is what keeps RNG-consuming consumers (push–pull's random
//! neighbor choice, BFS-ball sampling) byte-identical across the migration.
//!
//! ## Delta maintenance
//!
//! The transition-stepping edge engines flip only `O(p·N + q·|E|)` edges per
//! round, so rebuilding the whole CSR would dominate them. For that path
//! [`build_with_slack`](SnapshotBuf::build_with_slack) reserves `slack` spare
//! target slots per row and [`apply_delta`](SnapshotBuf::apply_delta) edits
//! the CSR in place: deaths swap-remove within the live prefix of each
//! endpoint's row, births append into the row's slack. The row invariant is
//! `live degree = row_len[u] ≤ offsets[u+1] − offsets[u] = row capacity`;
//! queries only ever read the live prefix. When a birth lands on a row whose
//! slack is exhausted, `apply_delta` falls back to a full rebuild (gathering
//! the live edge set plus the pending births into the staging buffer) with
//! fresh slack — the fallback reuses the staging buffers, so even it
//! allocates nothing after warm-up. Within-row neighbor order is **not**
//! preserved across deltas (swap-remove scrambles it); consumers that need
//! order stability must use the rebuild path.

use crate::{AdjacencyList, Graph, Node};

/// How [`SnapshotBuf::apply_delta`] absorbed one round of edits — the signal
/// the metrics layer and the delta-consistency tests use to distinguish
/// cheap in-place patches from slack-exhaustion rebuilds. Returned rather
/// than recorded so `meg-graph` stays independent of the instrumentation
/// crate; callers forward it to `meg-obs` when a recorder is installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "callers should record or assert whether the delta patched or rebuilt"]
pub enum DeltaOutcome {
    /// Every edit landed inside the rows' live prefixes and slack slots.
    Patched,
    /// A birth found an endpoint row full: the remaining births were folded
    /// into a full rebuild with fresh slack.
    Rebuilt {
        /// Arc slots (`targets` entries, live + slack) written by the
        /// rebuild's fill pass.
        arc_slots: usize,
    },
}

impl DeltaOutcome {
    /// Whether this round took the slack-exhaustion rebuild fallback.
    pub fn is_rebuilt(self) -> bool {
        matches!(self, DeltaOutcome::Rebuilt { .. })
    }

    /// Bytes written by the rebuild's fill pass (0 for a patched round).
    pub fn rebuild_bytes(self) -> usize {
        match self {
            DeltaOutcome::Patched => 0,
            DeltaOutcome::Rebuilt { arc_slots } => arc_slots * std::mem::size_of::<Node>(),
        }
    }
}

/// A mutable, reusable CSR-style snapshot of an undirected simple graph.
///
/// Lifecycle: [`begin(n)`](SnapshotBuf::begin) →
/// [`push_edge`](SnapshotBuf::push_edge)`*` → [`build`](SnapshotBuf::build) →
/// query (via [`Graph`] or [`neighbors`](SnapshotBuf::neighbors)) → `begin`
/// again. Queries before `build` are a logic error (checked by
/// `debug_assert`).
///
/// Producers must push each undirected edge exactly once and never push
/// self-loops — the same contract as
/// [`AdjacencyList::add_edge_unchecked`].
///
/// ## Example
///
/// ```
/// use meg_graph::{Graph, SnapshotBuf};
///
/// let mut buf = SnapshotBuf::new();
/// for t in 0..3 {
///     buf.begin(4);
///     buf.push_edge(0, 1);
///     buf.push_edge(2, 3);
///     if t == 2 {
///         buf.push_edge(1, 2);
///     }
///     buf.build();
///     assert_eq!(buf.num_nodes(), 4);
///     assert!(buf.has_edge(0, 1));
/// }
/// assert_eq!(buf.num_edges(), 3);
/// assert_eq!(buf.neighbors(1), &[0, 2]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SnapshotBuf {
    n: usize,
    /// Staged edge stream of the snapshot under construction.
    edges: Vec<(Node, Node)>,
    /// Degree counts during staging; reused as fill cursors inside `build`.
    /// `u32` keeps the cursor array half the size of the offset array, which
    /// matters in the scatter-heavy fill pass (`2m` random writes driven
    /// through it).
    deg: Vec<u32>,
    /// CSR row *capacity* offsets (`n + 1` entries once built). Row `u` owns
    /// `targets[offsets[u]..offsets[u+1]]`; only the first `row_len[u]` slots
    /// are live.
    offsets: Vec<usize>,
    /// CSR column indices (`2·num_edges + n·slack` slots once built).
    targets: Vec<Node>,
    /// Live degree of each row (`≤` the row capacity; equal when slack is 0
    /// and no deltas have been applied).
    row_len: Vec<u32>,
    /// Live undirected edge count (kept exact across deltas; the staging
    /// `edges` length is only the *initial* count).
    m: usize,
    /// Per-row spare slots requested at the last build; reused by the
    /// slack-exhaustion fallback rebuild.
    slack: u32,
    /// Whether `edges` still mirrors the live edge set (false once a delta
    /// has edited rows in place).
    staging_valid: bool,
    built: bool,
}

impl SnapshotBuf {
    /// Creates an empty buffer (zero nodes, built state).
    pub fn new() -> Self {
        SnapshotBuf {
            n: 0,
            edges: Vec::new(),
            deg: Vec::new(),
            offsets: vec![0],
            targets: Vec::new(),
            row_len: Vec::new(),
            m: 0,
            slack: 0,
            staging_valid: true,
            built: true,
        }
    }

    /// Creates a built, edgeless snapshot over `n` nodes.
    pub fn with_nodes(n: usize) -> Self {
        let mut buf = Self::new();
        buf.begin(n);
        buf.build();
        buf
    }

    /// Starts a new snapshot over `n` nodes, discarding the previous one.
    ///
    /// Reuses every internal buffer: after the capacities have reached the
    /// run's high-water mark this allocates nothing.
    pub fn begin(&mut self, n: usize) {
        self.n = n;
        self.edges.clear();
        self.deg.clear();
        self.deg.resize(n, 0);
        self.built = false;
    }

    /// Stages the undirected edge `{u, v}`.
    ///
    /// The caller guarantees `u != v`, both endpoints in range, and that the
    /// edge has not been pushed before (`debug_assert`ed where cheap — the
    /// same contract as [`AdjacencyList::add_edge_unchecked`]).
    #[inline]
    pub fn push_edge(&mut self, u: Node, v: Node) {
        debug_assert!(!self.built, "push_edge after build without begin");
        debug_assert_ne!(u, v, "self-loop ({u},{v})");
        debug_assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.deg[u as usize] += 1;
        self.deg[v as usize] += 1;
        self.edges.push((u, v));
    }

    /// Finalises the staged edges into CSR form (stable counting sort).
    pub fn build(&mut self) {
        self.finish_build(0);
    }

    /// Like [`build`](SnapshotBuf::build), but reserves `slack` spare target
    /// slots per row so later [`apply_delta`](SnapshotBuf::apply_delta) calls
    /// can append births without a rebuild. Row capacities are
    /// `degree + slack`; queries still only see the live prefix.
    pub fn build_with_slack(&mut self, slack: u32) {
        self.finish_build(slack);
    }

    fn finish_build(&mut self, slack: u32) {
        debug_assert!(!self.built, "build called twice without begin");
        let n = self.n;
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.row_len.clear();
        self.row_len.reserve(n);
        let mut acc = 0usize;
        self.offsets.push(0);
        for u in 0..n {
            // Reuse `deg` as the per-node fill cursor while accumulating the
            // offsets (one pass instead of prefix-sum + copy-back).
            let d = self.deg[u];
            self.row_len.push(d);
            self.deg[u] = acc as u32;
            acc += d as usize + slack as usize;
            self.offsets.push(acc);
        }
        assert!(
            acc <= u32::MAX as usize,
            "snapshot arc count {acc} exceeds the u32 cursor range"
        );
        // Resize without `clear()`: every live slot is overwritten by the
        // fill pass below (slack slots stay unread garbage), so re-zeroing
        // the kept prefix would be wasted work.
        self.targets.resize(acc, 0);
        for &(u, v) in &self.edges {
            self.targets[self.deg[u as usize] as usize] = v;
            self.deg[u as usize] += 1;
            self.targets[self.deg[v as usize] as usize] = u;
            self.deg[v as usize] += 1;
        }
        self.m = self.edges.len();
        self.slack = slack;
        self.staging_valid = true;
        self.built = true;
    }

    /// Edits the built CSR in place: removes every edge in `deaths`, then
    /// inserts every edge in `births` into the rows' slack slots.
    ///
    /// Deaths swap-remove within the live prefix of both endpoint rows (so
    /// within-row neighbor order is *not* preserved); births append. When a
    /// birth finds either endpoint row full, the remaining births are folded
    /// into a full rebuild with the slack requested at the last
    /// `build_with_slack` — semantically identical, just slower. All slices
    /// must be consistent with the current edge set: every death present,
    /// every birth absent, no duplicates. The returned [`DeltaOutcome`] says
    /// which path the round took (and how much the fallback rewrote).
    pub fn apply_delta(
        &mut self,
        births: &[(Node, Node)],
        deaths: &[(Node, Node)],
    ) -> DeltaOutcome {
        debug_assert!(self.built, "apply_delta before build");
        for &(u, v) in deaths {
            self.remove_arc(u, v);
            self.remove_arc(v, u);
            self.m -= 1;
        }
        if !deaths.is_empty() {
            self.staging_valid = false;
        }
        for (i, &(u, v)) in births.iter().enumerate() {
            debug_assert_ne!(u, v, "self-loop birth ({u},{v})");
            if self.row_has_slack(u) && self.row_has_slack(v) {
                self.push_arc(u, v);
                self.push_arc(v, u);
                self.m += 1;
                self.staging_valid = false;
            } else {
                self.rebuild_from_rows(&births[i..]);
                return DeltaOutcome::Rebuilt {
                    arc_slots: self.targets.len(),
                };
            }
        }
        DeltaOutcome::Patched
    }

    #[inline]
    fn remove_arc(&mut self, u: Node, v: Node) {
        let start = self.offsets[u as usize];
        let len = self.row_len[u as usize] as usize;
        let row = &mut self.targets[start..start + len];
        let pos = row
            .iter()
            .position(|&x| x == v)
            .expect("apply_delta: death of an absent edge");
        row.swap(pos, len - 1);
        self.row_len[u as usize] -= 1;
    }

    #[inline]
    fn row_has_slack(&self, u: Node) -> bool {
        let cap = self.offsets[u as usize + 1] - self.offsets[u as usize];
        (self.row_len[u as usize] as usize) < cap
    }

    #[inline]
    fn push_arc(&mut self, u: Node, v: Node) {
        let slot = self.offsets[u as usize] + self.row_len[u as usize] as usize;
        self.targets[slot] = v;
        self.row_len[u as usize] += 1;
    }

    /// Slack-exhaustion fallback: gathers the live edge set plus the still
    /// `pending` births into the staging buffer and rebuilds with the same
    /// per-row slack. Reuses `edges`/`deg`/`offsets`/`targets`, so after
    /// warm-up even this path allocates nothing.
    fn rebuild_from_rows(&mut self, pending: &[(Node, Node)]) {
        let n = self.n;
        self.edges.clear();
        self.deg.clear();
        self.deg.resize(n, 0);
        for u in 0..n {
            let start = self.offsets[u];
            for i in 0..self.row_len[u] as usize {
                let v = self.targets[start + i];
                if (u as Node) < v {
                    self.edges.push((u as Node, v));
                    self.deg[u] += 1;
                    self.deg[v as usize] += 1;
                }
            }
        }
        for &(u, v) in pending {
            self.edges.push((u, v));
            self.deg[u as usize] += 1;
            self.deg[v as usize] += 1;
        }
        let slack = self.slack;
        self.built = false;
        self.finish_build(slack);
    }

    /// Rebuilds the buffer as an exact copy of an adjacency list, preserving
    /// every neighbor list's order (used by the frozen/scheduled adapters).
    pub fn copy_from_adjacency(&mut self, g: &AdjacencyList) {
        let n = g.num_nodes();
        self.n = n;
        self.edges.clear();
        self.deg.clear();
        self.deg.resize(n, 0);
        self.offsets.clear();
        self.offsets.reserve(n + 1);
        self.targets.clear();
        self.row_len.clear();
        self.row_len.reserve(n);
        let mut acc = 0usize;
        self.offsets.push(0);
        for u in 0..n {
            let d = g.neighbors(u as Node).len();
            self.row_len.push(d as u32);
            acc += d;
            self.offsets.push(acc);
        }
        self.targets.reserve(acc);
        for u in 0..n {
            self.targets.extend_from_slice(g.neighbors(u as Node));
        }
        // Recover the staged edge stream so `num_edges`/`edges` stay
        // consistent: each undirected edge once, in row order.
        for u in 0..n as Node {
            for &v in g.neighbors(u) {
                if u < v {
                    self.edges.push((u, v));
                }
            }
        }
        debug_assert_eq!(self.edges.len(), g.num_edges());
        self.m = self.edges.len();
        self.slack = 0;
        self.staging_valid = true;
        self.built = true;
    }

    /// Borrows the live neighbor slice of `u` (valid after `build`).
    #[inline]
    pub fn neighbors(&self, u: Node) -> &[Node] {
        debug_assert!(self.built, "query before build");
        &self.targets[self.offsets[u as usize]..][..self.row_len[u as usize] as usize]
    }

    /// Returns every edge `{u, v}` with `u < v`, in CSR row order
    /// (allocates; intended for tests and one-shot freezes, not the hot
    /// path).
    pub fn edges(&self) -> Vec<(Node, Node)> {
        debug_assert!(self.built, "query before build");
        let mut out = Vec::with_capacity(self.num_edges());
        for u in 0..self.n as Node {
            for &v in self.neighbors(u) {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Copies the snapshot into a fresh [`AdjacencyList`]
    /// (test/interop helper — allocates). While the staged edge stream still
    /// mirrors the live edge set it is replayed so per-node neighbor order is
    /// preserved; after in-place deltas the rows are walked directly instead.
    pub fn to_adjacency(&self) -> AdjacencyList {
        debug_assert!(self.built, "query before build");
        let mut g = AdjacencyList::new(self.n);
        if self.staging_valid {
            for &(u, v) in &self.edges {
                g.add_edge_unchecked(u, v);
            }
        } else {
            for u in 0..self.n as Node {
                for &v in self.neighbors(u) {
                    if u < v {
                        g.add_edge_unchecked(u, v);
                    }
                }
            }
        }
        g
    }

    /// Capacity snapshot `(edges, deg, offsets, targets)` — lets tests assert
    /// the no-allocation-after-warm-up invariant without a custom allocator.
    pub fn capacities(&self) -> (usize, usize, usize, usize) {
        (
            self.edges.capacity(),
            self.deg.capacity(),
            self.offsets.capacity(),
            self.targets.capacity(),
        )
    }
}

impl Graph for SnapshotBuf {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m
    }

    fn for_each_neighbor(&self, u: Node, f: &mut dyn FnMut(Node)) {
        for &v in self.neighbors(u) {
            f(v);
        }
    }

    fn degree(&self, u: Node) -> usize {
        debug_assert!(self.built, "query before build");
        self.row_len[u as usize] as usize
    }

    fn has_edge(&self, u: Node, v: Node) -> bool {
        // Scan the shorter of the two neighbor lists (same trick as
        // `AdjacencyList::has_edge`; the sparse edge engine calls this per
        // birth candidate).
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).contains(&b)
    }

    fn neighbor_slice(&self, u: Node) -> Option<&[Node]> {
        Some(self.neighbors(u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn build_and_query_matches_adjacency_semantics() {
        let mut buf = SnapshotBuf::new();
        buf.begin(5);
        for (u, v) in [(0, 1), (3, 2), (1, 4), (1, 2)] {
            buf.push_edge(u, v);
        }
        buf.build();
        assert_eq!(buf.num_nodes(), 5);
        assert_eq!(buf.num_edges(), 4);
        // Neighbor order = push order of incident edges.
        assert_eq!(buf.neighbors(1), &[0, 4, 2]);
        assert_eq!(buf.neighbors(2), &[3, 1]);
        assert_eq!(Graph::degree(&buf, 1), 3);
        assert!(buf.has_edge(2, 3) && buf.has_edge(3, 2));
        assert!(!buf.has_edge(0, 4));
        assert_eq!(buf.edges(), vec![(0, 1), (1, 4), (1, 2), (2, 3)]);
        assert_eq!(buf.neighbor_slice(1), Some(&[0, 4, 2][..]));
    }

    #[test]
    fn reuse_across_rebuilds_is_clean() {
        let mut buf = SnapshotBuf::new();
        buf.begin(3);
        buf.push_edge(0, 1);
        buf.push_edge(1, 2);
        buf.build();
        assert_eq!(buf.num_edges(), 2);
        buf.begin(4);
        buf.push_edge(2, 3);
        buf.build();
        assert_eq!(buf.num_nodes(), 4);
        assert_eq!(buf.num_edges(), 1);
        assert!(buf.neighbors(0).is_empty());
        assert!(buf.neighbors(1).is_empty());
        assert_eq!(buf.neighbors(3), &[2]);
    }

    #[test]
    fn capacities_stabilise_after_warmup() {
        let mut buf = SnapshotBuf::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rebuild = |buf: &mut SnapshotBuf, rng: &mut ChaCha8Rng| {
            buf.begin(64);
            for u in 0..64u32 {
                for v in (u + 1)..64 {
                    if rng.gen_bool(0.2) {
                        buf.push_edge(u, v);
                    }
                }
            }
            buf.build();
        };
        for _ in 0..20 {
            rebuild(&mut buf, &mut rng);
        }
        let warm = buf.capacities();
        for _ in 0..50 {
            rebuild(&mut buf, &mut rng);
            assert_eq!(buf.capacities(), warm, "capacity drifted after warm-up");
        }
    }

    #[test]
    fn matches_adjacency_list_for_random_edge_streams() {
        // The CSR construction must be edge-set- and neighbor-order-identical
        // to pushing the same stream into an AdjacencyList.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut buf = SnapshotBuf::new();
        for trial in 0..60 {
            let n = rng.gen_range(2..40usize);
            let mut adj = AdjacencyList::new(n);
            buf.begin(n);
            let mut pushed = std::collections::BTreeSet::new();
            for _ in 0..rng.gen_range(0..80) {
                let u = rng.gen_range(0..n) as Node;
                let v = rng.gen_range(0..n) as Node;
                let (a, b) = (u.min(v), u.max(v));
                if a == b || !pushed.insert((a, b)) {
                    continue;
                }
                adj.add_edge_unchecked(a, b);
                buf.push_edge(a, b);
            }
            buf.build();
            assert_eq!(buf.num_edges(), adj.num_edges(), "trial {trial}");
            for u in 0..n as Node {
                assert_eq!(buf.neighbors(u), adj.neighbors(u), "trial {trial} node {u}");
            }
            assert_eq!(buf.edges(), adj.edges(), "trial {trial}");
            let back = buf.to_adjacency();
            assert_eq!(back.edges(), adj.edges(), "trial {trial} round-trip");
        }
    }

    #[test]
    fn copy_from_adjacency_preserves_neighbor_order() {
        let mut g = AdjacencyList::new(5);
        // Deliberately scrambled insertion order.
        g.add_edge(3, 1);
        g.add_edge(1, 0);
        g.add_edge(4, 1);
        let mut buf = SnapshotBuf::new();
        buf.copy_from_adjacency(&g);
        assert_eq!(buf.num_edges(), 3);
        for u in 0..5u32 {
            assert_eq!(buf.neighbors(u), g.neighbors(u), "node {u}");
        }
        // Reuse for a different graph.
        let h = generators::cycle(7);
        buf.copy_from_adjacency(&h);
        assert_eq!(buf.num_nodes(), 7);
        assert_eq!(buf.num_edges(), 7);
        for u in 0..7u32 {
            assert_eq!(buf.neighbors(u), h.neighbors(u), "node {u}");
        }
    }

    fn sorted_rows(buf: &SnapshotBuf) -> Vec<Vec<Node>> {
        (0..buf.num_nodes() as Node)
            .map(|u| {
                let mut row = buf.neighbors(u).to_vec();
                row.sort_unstable();
                row
            })
            .collect()
    }

    #[test]
    fn build_with_slack_is_query_identical_to_plain_build() {
        let mut plain = SnapshotBuf::new();
        let mut slacked = SnapshotBuf::new();
        for buf in [&mut plain, &mut slacked] {
            buf.begin(6);
            for (u, v) in [(0, 1), (4, 2), (1, 4), (5, 0)] {
                buf.push_edge(u, v);
            }
        }
        plain.build();
        slacked.build_with_slack(3);
        assert_eq!(plain.num_edges(), slacked.num_edges());
        for u in 0..6u32 {
            assert_eq!(plain.neighbors(u), slacked.neighbors(u), "node {u}");
            assert_eq!(Graph::degree(&plain, u), Graph::degree(&slacked, u));
        }
        assert_eq!(plain.edges(), slacked.edges());
    }

    #[test]
    fn apply_delta_edits_in_place_and_falls_back_when_slack_runs_out() {
        let mut buf = SnapshotBuf::new();
        buf.begin(5);
        buf.push_edge(0, 1);
        buf.push_edge(1, 2);
        buf.push_edge(3, 4);
        buf.build_with_slack(1);
        // One death + one birth fit in the slack.
        let outcome = buf.apply_delta(&[(0, 2)], &[(1, 2)]);
        assert_eq!(outcome, DeltaOutcome::Patched);
        assert_eq!(outcome.rebuild_bytes(), 0);
        assert_eq!(buf.num_edges(), 3);
        assert!(buf.has_edge(0, 2) && !buf.has_edge(1, 2));
        assert_eq!(
            sorted_rows(&buf),
            vec![vec![1, 2], vec![0], vec![0], vec![4], vec![3]]
        );
        // Two more births on node 0 exhaust its single spare slot and force
        // the fallback rebuild; the result must still be the exact edge set.
        let outcome = buf.apply_delta(&[(0, 3), (0, 4)], &[]);
        assert!(outcome.is_rebuilt());
        // 5 edges = 10 live arc slots, + 1 slack slot per row.
        assert_eq!(outcome, DeltaOutcome::Rebuilt { arc_slots: 15 });
        assert_eq!(outcome.rebuild_bytes(), 15 * std::mem::size_of::<Node>(),);
        assert_eq!(buf.num_edges(), 5);
        assert_eq!(
            sorted_rows(&buf),
            vec![vec![1, 2, 3, 4], vec![0], vec![0], vec![0, 4], vec![0, 3]]
        );
        // The adjacency interop path must reflect the delta-edited rows.
        let g = buf.to_adjacency();
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(0, 4));
    }

    #[test]
    fn delta_sequences_match_from_scratch_rebuilds() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 24usize;
        for slack in [0u32, 1, 4] {
            let mut live = std::collections::BTreeSet::new();
            let mut buf = SnapshotBuf::new();
            buf.begin(n);
            for u in 0..n as Node {
                for v in (u + 1)..n as Node {
                    if rng.gen_bool(0.15) {
                        live.insert((u, v));
                        buf.push_edge(u, v);
                    }
                }
            }
            buf.build_with_slack(slack);
            for round in 0..40 {
                let deaths: Vec<(Node, Node)> =
                    live.iter().copied().filter(|_| rng.gen_bool(0.3)).collect();
                let mut births = Vec::new();
                for _ in 0..rng.gen_range(0..8) {
                    let u = rng.gen_range(0..n) as Node;
                    let v = rng.gen_range(0..n) as Node;
                    let (a, b) = (u.min(v), u.max(v));
                    if a != b && !live.contains(&(a, b)) && !births.contains(&(a, b)) {
                        births.push((a, b));
                    }
                }
                for d in &deaths {
                    live.remove(d);
                }
                for &b in &births {
                    live.insert(b);
                }
                let _ = buf.apply_delta(&births, &deaths);
                // Reference: a from-scratch build of the same edge set.
                let mut fresh = SnapshotBuf::new();
                fresh.begin(n);
                for &(u, v) in &live {
                    fresh.push_edge(u, v);
                }
                fresh.build();
                assert_eq!(
                    buf.num_edges(),
                    fresh.num_edges(),
                    "slack {slack} round {round}"
                );
                assert_eq!(
                    sorted_rows(&buf),
                    sorted_rows(&fresh),
                    "slack {slack} round {round}"
                );
            }
        }
    }

    #[test]
    fn with_nodes_is_edgeless_and_queryable() {
        let buf = SnapshotBuf::with_nodes(6);
        assert_eq!(buf.num_nodes(), 6);
        assert_eq!(buf.num_edges(), 0);
        for u in 0..6u32 {
            assert!(buf.neighbors(u).is_empty());
        }
        let empty = SnapshotBuf::new();
        assert_eq!(empty.num_nodes(), 0);
        assert_eq!(empty.num_edges(), 0);
    }
}
