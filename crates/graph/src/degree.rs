//! Degree statistics of a snapshot.
//!
//! Edge-MEG stationary snapshots are Erdős–Rényi `G(n, p̂)`, so their degree
//! distribution is Binomial(n−1, p̂); geometric snapshots concentrate around
//! the expected number of nodes inside a disk of radius `R`. Degree summaries
//! are both a model sanity check and an input to the lower-bound argument of
//! Theorem 4.4 (which hinges on the maximum degree).

use crate::{Graph, Node};

/// Summary of the degree sequence of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population variance of the degree sequence.
    pub variance: f64,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

/// Computes the degree of every node.
pub fn degree_sequence<G: Graph + ?Sized>(g: &G) -> Vec<usize> {
    (0..g.num_nodes()).map(|u| g.degree(u as Node)).collect()
}

/// Computes [`DegreeStats`] for a graph. Returns `None` for the empty graph.
pub fn degree_stats<G: Graph + ?Sized>(g: &G) -> Option<DegreeStats> {
    let n = g.num_nodes();
    if n == 0 {
        return None;
    }
    let seq = degree_sequence(g);
    let min = *seq.iter().min().expect("nonempty");
    let max = *seq.iter().max().expect("nonempty");
    let isolated = seq.iter().filter(|&&d| d == 0).count();
    let mean = seq.iter().sum::<usize>() as f64 / n as f64;
    let variance = seq
        .iter()
        .map(|&d| {
            let x = d as f64 - mean;
            x * x
        })
        .sum::<f64>()
        / n as f64;
    Some(DegreeStats {
        min,
        max,
        mean,
        variance,
        isolated,
    })
}

/// Degree histogram: `hist[d]` is the number of nodes of degree `d`.
pub fn degree_histogram<G: Graph + ?Sized>(g: &G) -> Vec<usize> {
    let seq = degree_sequence(g);
    let max = seq.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in seq {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, AdjacencyList};

    #[test]
    fn stats_of_star() {
        let g = generators::star(5); // center 0 + 5 leaves
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.isolated, 0);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_regular_graph_have_zero_variance() {
        let g = generators::cycle(8);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn handshake_lemma() {
        let g = generators::grid2d(4, 5);
        let seq = degree_sequence(&g);
        assert_eq!(seq.iter().sum::<usize>(), 2 * g.num_edges());
    }

    #[test]
    fn isolated_counting_and_histogram() {
        let g = AdjacencyList::from_edges(5, [(0, 1)]);
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.isolated, 3);
        let hist = degree_histogram(&g);
        assert_eq!(hist, vec![3, 2]);
    }

    #[test]
    fn empty_graph_has_no_stats() {
        assert!(degree_stats(&AdjacencyList::new(0)).is_none());
        assert_eq!(degree_histogram(&AdjacencyList::new(0)), vec![0]);
    }
}
