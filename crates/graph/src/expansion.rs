//! Parameterized node expansion measurement.
//!
//! A graph is an `(h, k)`-expander (Definition 2.2) when every node set `I`
//! with `|I| ≤ h` has `|N(I)| ≥ k·|I|`. The paper's entire machinery reduces a
//! flooding-time bound to a family of such properties, so this module provides
//! both exact verification (exponential, tiny inputs and tests only) and
//! estimation of the worst-case expansion ratio at a given set size
//! (random-subset and BFS-ball sampling, the latter catching the clustered
//! sets that are worst for geometric graphs).

use crate::{out_neighborhood, visit_neighbors, Graph, Node, NodeSet};
use rand::seq::SliceRandom;
use rand::Rng;

/// `|N(I)|` for the given set.
pub fn neighborhood_size<G: Graph + ?Sized>(g: &G, set: &NodeSet) -> usize {
    out_neighborhood(g, set).len()
}

/// Expansion ratio `|N(I)| / |I|`. Returns `f64::INFINITY` for the empty set.
pub fn expansion_ratio<G: Graph + ?Sized>(g: &G, set: &NodeSet) -> f64 {
    if set.is_empty() {
        return f64::INFINITY;
    }
    neighborhood_size(g, set) as f64 / set.len() as f64
}

/// Exact check of the `(h, k)`-expander property by enumerating **all**
/// non-empty subsets of size ≤ `h`.
///
/// Cost is `Σ_{i≤h} C(n, i)`; intended for `n ≤ ~20` in tests and for
/// cross-validating the sampling estimators.
pub fn is_hk_expander_exact<G: Graph + ?Sized>(g: &G, h: usize, k: f64) -> bool {
    worst_expansion_exact(g, h).is_none_or(|(_, ratio)| ratio >= k)
}

/// Exhaustively finds the set of size ≤ `h` with the worst expansion ratio.
///
/// Returns `(set, ratio)`, or `None` when the graph has no nodes or `h == 0`.
pub fn worst_expansion_exact<G: Graph + ?Sized>(g: &G, h: usize) -> Option<(NodeSet, f64)> {
    let n = g.num_nodes();
    if n == 0 || h == 0 {
        return None;
    }
    let h = h.min(n);
    let mut worst: Option<(NodeSet, f64)> = None;
    let mut members: Vec<Node> = Vec::with_capacity(h);
    // Depth-first enumeration of all subsets of size 1..=h.
    fn recurse<G: Graph + ?Sized>(
        g: &G,
        n: usize,
        h: usize,
        start: usize,
        members: &mut Vec<Node>,
        worst: &mut Option<(NodeSet, f64)>,
    ) {
        if !members.is_empty() {
            let set = NodeSet::from_iter(n, members.iter().copied());
            let ratio = expansion_ratio(g, &set);
            if worst.as_ref().is_none_or(|(_, w)| ratio < *w) {
                *worst = Some((set, ratio));
            }
        }
        if members.len() == h {
            return;
        }
        for u in start..n {
            members.push(u as Node);
            recurse(g, n, h, u + 1, members, worst);
            members.pop();
        }
    }
    recurse(g, n, h, 0, &mut members, &mut worst);
    worst
}

/// How candidate sets are drawn when estimating worst-case expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Uniformly random subsets of the requested size.
    UniformSubsets,
    /// BFS balls grown from a random seed node until the requested size is
    /// reached; these clustered sets are the near-worst case for geometric
    /// graphs.
    BfsBalls,
    /// Half the samples from each of the two strategies above.
    Mixed,
}

/// Estimates the minimum expansion ratio over sets of size exactly `h` using
/// `samples` sampled candidate sets.
///
/// The estimate is an *upper bound* on the true worst-case ratio (sampling can
/// only miss worse sets), which is the conservative direction when using it to
/// drive the flooding upper-bound evaluator.
pub fn min_expansion_sampled<G: Graph + ?Sized, R: Rng>(
    g: &G,
    h: usize,
    samples: usize,
    strategy: SamplingStrategy,
    rng: &mut R,
) -> f64 {
    let n = g.num_nodes();
    assert!(h >= 1 && h <= n, "set size {h} out of range for n={n}");
    let mut best = f64::INFINITY;
    let nodes: Vec<Node> = (0..n as Node).collect();
    for i in 0..samples.max(1) {
        let use_ball = match strategy {
            SamplingStrategy::UniformSubsets => false,
            SamplingStrategy::BfsBalls => true,
            SamplingStrategy::Mixed => i % 2 == 0,
        };
        let set = if use_ball {
            bfs_ball(g, rng.gen_range(0..n) as Node, h)
        } else {
            let chosen: Vec<Node> = nodes.choose_multiple(rng, h).copied().collect();
            NodeSet::from_iter(n, chosen)
        };
        let ratio = expansion_ratio(g, &set);
        if ratio < best {
            best = ratio;
        }
    }
    best
}

/// Grows a BFS ball of exactly `target` nodes around `seed` (fewer if the
/// component of `seed` is smaller than `target`).
pub fn bfs_ball<G: Graph + ?Sized>(g: &G, seed: Node, target: usize) -> NodeSet {
    let n = g.num_nodes();
    let mut set = NodeSet::new(n);
    let mut queue = std::collections::VecDeque::new();
    set.insert(seed);
    queue.push_back(seed);
    while set.len() < target {
        let Some(u) = queue.pop_front() else { break };
        let mut done = false;
        visit_neighbors(g, u, |v| {
            if done || set.contains(v) {
                return;
            }
            set.insert(v);
            queue.push_back(v);
            if set.len() >= target {
                done = true;
            }
        });
    }
    set
}

/// One row of an [`ExpansionProfile`]: the estimated worst expansion ratio at
/// a given set size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpansionPoint {
    /// Set size `h`.
    pub h: usize,
    /// Estimated minimum of `|N(I)|/|I|` over sets with `|I| = h`.
    pub min_ratio: f64,
}

/// Estimated worst-case expansion ratio as a function of the set size.
///
/// This is the empirical analogue of the `(h_i, k_i)` sequences of
/// Theorem 2.5: feeding it to `meg-core`'s bound evaluator produces a fully
/// data-driven flooding-time prediction.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExpansionProfile {
    /// Profile points ordered by increasing `h`.
    pub points: Vec<ExpansionPoint>,
}

impl ExpansionProfile {
    /// Measures the profile at geometrically spaced set sizes
    /// `1, 2, 4, …` up to `n/2`, with `samples` candidate sets per size.
    pub fn measure<G: Graph + ?Sized, R: Rng>(
        g: &G,
        samples: usize,
        strategy: SamplingStrategy,
        rng: &mut R,
    ) -> Self {
        let n = g.num_nodes();
        let mut points = Vec::new();
        if n < 2 {
            return ExpansionProfile { points };
        }
        let mut h = 1usize;
        loop {
            let capped = h.min(n / 2).max(1);
            points.push(ExpansionPoint {
                h: capped,
                min_ratio: min_expansion_sampled(g, capped, samples, strategy, rng),
            });
            if capped >= n / 2 {
                break;
            }
            h *= 2;
        }
        points.dedup_by_key(|p| p.h);
        ExpansionProfile { points }
    }

    /// Returns the `(h, k)` pairs as vectors suitable for the bound evaluator:
    /// `h` strictly increasing, `k` made non-increasing by a running minimum
    /// (as required by Lemma 2.4).
    pub fn monotone_hk(&self) -> (Vec<usize>, Vec<f64>) {
        let mut hs = Vec::with_capacity(self.points.len());
        let mut ks = Vec::with_capacity(self.points.len());
        let mut running = f64::INFINITY;
        for p in &self.points {
            running = running.min(p.min_ratio);
            hs.push(p.h);
            ks.push(running);
        }
        (hs, ks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn complete_graph_expansion_is_maximal() {
        let g = generators::complete(8);
        let set = NodeSet::from_iter(8, [0u32, 1]);
        assert_eq!(neighborhood_size(&g, &set), 6);
        assert_eq!(expansion_ratio(&g, &set), 3.0);
        // every set of size ≤ 4 expands by at least (n - h)/h = 1.0
        assert!(is_hk_expander_exact(&g, 4, 1.0));
        assert!(!is_hk_expander_exact(&g, 4, 1.1));
    }

    #[test]
    fn path_graph_is_a_poor_expander() {
        let g = generators::path(10);
        // A prefix segment of length h has exactly one outside neighbor.
        let (worst, ratio) = worst_expansion_exact(&g, 3).unwrap();
        assert!(ratio <= 1.0 / 3.0 + 1e-12);
        assert!(worst.len() <= 3);
        assert!(!is_hk_expander_exact(&g, 3, 0.5));
        assert!(is_hk_expander_exact(&g, 3, 1.0 / 3.0));
    }

    #[test]
    fn empty_set_has_infinite_ratio() {
        let g = generators::complete(4);
        let set = NodeSet::new(4);
        assert_eq!(expansion_ratio(&g, &set), f64::INFINITY);
    }

    #[test]
    fn sampled_min_upper_bounds_exact_worst() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = generators::cycle(12);
        let (_, exact_ratio) = worst_expansion_exact(&g, 3).unwrap();
        for strategy in [
            SamplingStrategy::UniformSubsets,
            SamplingStrategy::BfsBalls,
            SamplingStrategy::Mixed,
        ] {
            let est = min_expansion_sampled(&g, 3, 50, strategy, &mut rng);
            assert!(est >= exact_ratio - 1e-12, "{strategy:?}");
        }
        // BFS balls of size 3 on a cycle always have exactly 2 outside neighbors,
        // which is the true worst case here.
        let ball_est = min_expansion_sampled(&g, 3, 20, SamplingStrategy::BfsBalls, &mut rng);
        assert!((ball_est - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bfs_ball_size_and_connectivity() {
        let g = generators::grid2d(5, 5);
        let ball = bfs_ball(&g, 12, 7);
        assert_eq!(ball.len(), 7);
        assert!(ball.contains(12));
        // ball limited by component size
        let h = crate::AdjacencyList::from_edges(6, [(0, 1), (1, 2)]);
        let ball2 = bfs_ball(&h, 0, 5);
        assert_eq!(ball2.len(), 3);
    }

    #[test]
    fn profile_is_monotone_after_normalisation() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::grid2d(8, 8);
        let profile = ExpansionProfile::measure(&g, 10, SamplingStrategy::Mixed, &mut rng);
        assert!(!profile.points.is_empty());
        let (hs, ks) = profile.monotone_hk();
        assert_eq!(hs.len(), ks.len());
        assert!(hs.windows(2).all(|w| w[0] < w[1]));
        assert!(ks.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(*hs.last().unwrap(), 32);
    }

    #[test]
    fn star_center_set_expands_to_everything() {
        let g = generators::star(9);
        let center = NodeSet::singleton(10, 0);
        assert_eq!(neighborhood_size(&g, &center), 9);
    }
}
