//! Mutable adjacency-list representation of an undirected simple graph.
//!
//! Model crates rebuild the edge set on every time step; `AdjacencyList` is
//! the representation they construct into. It can be frozen into a [`Csr`](crate::Csr)
//! (`crate::csr`) when a snapshot is queried many times.

use crate::{Graph, Node};

/// Undirected simple graph stored as one neighbor vector per node.
///
/// Self-loops are rejected; parallel edges are ignored when added through
/// [`AdjacencyList::add_edge`]. Neighbor lists are kept unsorted for O(1)
/// insertion; call [`AdjacencyList::sort_neighbors`] if deterministic
/// iteration order is required.
#[derive(Clone, Debug, Default)]
pub struct AdjacencyList {
    adj: Vec<Vec<Node>>,
    num_edges: usize,
}

impl AdjacencyList {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        AdjacencyList {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` nodes from an edge list.
    ///
    /// Duplicate edges and self-loops are ignored.
    pub fn from_edges<I: IntoIterator<Item = (Node, Node)>>(n: usize, edges: I) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Returns `true` if the edge was added, `false` if it already existed or
    /// `u == v`. Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: Node, v: Node) -> bool {
        let n = self.adj.len();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u},{v}) out of range for n={n}"
        );
        if u == v {
            return false;
        }
        if self.adj[u as usize].contains(&v) {
            return false;
        }
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.num_edges += 1;
        true
    }

    /// Adds the undirected edge `{u, v}` without checking whether it already
    /// exists.
    ///
    /// This is the fast path used by generators that guarantee uniqueness
    /// (e.g. Erdős–Rényi skip sampling, geometric cell sweeps). Adding a
    /// duplicate edge through this method produces a multigraph and violates
    /// the crate's simple-graph invariant, so callers must uphold uniqueness.
    pub fn add_edge_unchecked(&mut self, u: Node, v: Node) {
        debug_assert_ne!(u, v, "self-loop");
        debug_assert!(
            !self.adj[u as usize].contains(&v),
            "duplicate edge ({u},{v})"
        );
        self.adj[u as usize].push(v);
        self.adj[v as usize].push(u);
        self.num_edges += 1;
    }

    /// Removes the undirected edge `{u, v}` if present; returns whether it was.
    pub fn remove_edge(&mut self, u: Node, v: Node) -> bool {
        if u == v {
            return false;
        }
        let pos = self.adj[u as usize].iter().position(|&w| w == v);
        match pos {
            Some(i) => {
                self.adj[u as usize].swap_remove(i);
                let j = self.adj[v as usize]
                    .iter()
                    .position(|&w| w == u)
                    .expect("asymmetric adjacency");
                self.adj[v as usize].swap_remove(j);
                self.num_edges -= 1;
                true
            }
            None => false,
        }
    }

    /// Removes all edges, keeping the node set.
    pub fn clear_edges(&mut self) {
        for list in self.adj.iter_mut() {
            list.clear();
        }
        self.num_edges = 0;
    }

    /// Borrows the neighbor slice of `u`.
    pub fn neighbors(&self, u: Node) -> &[Node] {
        &self.adj[u as usize]
    }

    /// Sorts every neighbor list (useful for deterministic output and tests).
    pub fn sort_neighbors(&mut self) {
        for list in self.adj.iter_mut() {
            list.sort_unstable();
        }
    }

    /// Returns every edge `{u, v}` with `u < v`, in node order.
    pub fn edges(&self) -> Vec<(Node, Node)> {
        let mut out = Vec::with_capacity(self.num_edges);
        for (u, list) in self.adj.iter().enumerate() {
            for &v in list {
                if (u as Node) < v {
                    out.push((u as Node, v));
                }
            }
        }
        out
    }
}

impl Graph for AdjacencyList {
    fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn for_each_neighbor(&self, u: Node, f: &mut dyn FnMut(Node)) {
        for &v in &self.adj[u as usize] {
            f(v);
        }
    }

    fn degree(&self, u: Node) -> usize {
        self.adj[u as usize].len()
    }

    fn has_edge(&self, u: Node, v: Node) -> bool {
        let (a, b) = if self.adj[u as usize].len() <= self.adj[v as usize].len() {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[a as usize].contains(&b)
    }

    fn neighbor_slice(&self, u: Node) -> Option<&[Node]> {
        Some(&self.adj[u as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = AdjacencyList::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(0, 1), "duplicate rejected");
        assert!(!g.add_edge(1, 0), "reverse duplicate rejected");
        assert!(!g.add_edge(2, 2), "self-loop rejected");
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn remove_edge() {
        let mut g = AdjacencyList::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(1, 0));
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn edges_listing_is_canonical() {
        let g = AdjacencyList::from_edges(4, [(2, 1), (0, 3), (3, 1)]);
        let mut e = g.edges();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 3), (1, 2), (1, 3)]);
    }

    #[test]
    fn clear_edges_keeps_nodes() {
        let mut g = AdjacencyList::from_edges(5, [(0, 1), (2, 3)]);
        g.clear_edges();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn from_edges_ignores_junk() {
        let g = AdjacencyList::from_edges(3, [(0, 0), (0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 1);
    }
}
