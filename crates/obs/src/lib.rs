//! # meg-obs
//!
//! Zero-overhead-when-off instrumentation for the meg workspace: monotonic
//! [`Counter`]s, per-round [`Gauge`]s, and [`span`] timings, plus
//! [`MetricsSnapshot`] rendering for the `meg-lab run --metrics` sinks.
//!
//! ## Design rules
//!
//! * **Off by default, cheap when off.** All recording entry points begin
//!   with one relaxed atomic load of the global enable flag and return
//!   immediately when no recorder is installed. No locks are taken, no
//!   clocks are read, and nothing allocates on the disabled path.
//! * **Deterministic under observation.** Recording never consumes RNG
//!   draws, never reorders work, and never feeds back into simulation
//!   branches; monotonic-clock reads happen strictly outside RNG-consuming
//!   code. Installing a recorder therefore cannot change a single emitted
//!   row byte — the `golden_rows_observed` suite enforces this.
//! * **Allocation-free recording.** Span timings land in fixed-size log2
//!   latency histograms ([`SPAN_HIST_BUCKETS`] buckets of `u64`), so the
//!   recording path never allocates — not even at [`install`], which only
//!   zeroes static state.
//! * **Aggregate, don't instrument iterations.** Hot loops accumulate into
//!   local variables and flush one counter add per call — per-iteration
//!   atomics are forbidden by the ≤5% overhead budget.
//! * **Mergeable.** [`MetricsSnapshot`] is a commutative monoid under
//!   [`MetricsSnapshot::merge`] with [`MetricsSnapshot::empty`] as identity:
//!   counters and histogram buckets are summed exactly (integer arithmetic
//!   throughout — no f64 in the stored statistics), so a sweep coordinator
//!   can pool snapshots shipped from worker processes in any order.
//!
//! ## Example
//!
//! ```
//! use meg_obs as obs;
//!
//! obs::install();
//! obs::add(obs::Counter::EdgeBirths, 3);
//! {
//!     let _guard = obs::span("advance");
//!     // ... timed work ...
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("edge_births"), 3);
//! assert_eq!(snap.span("advance").unwrap().count, 1);
//! obs::uninstall();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Registry: counters, gauges, spans

/// Monotonic event counters. Each increments forever while a recorder is
/// installed; [`install`] resets all of them to zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Edges born this run (both edge-MEG flip sampling and geometric
    /// movement deltas).
    EdgeBirths,
    /// Edges that died this run.
    EdgeDeaths,
    /// Delta rounds applied through `SnapshotBuf::apply_delta`.
    DeltaRounds,
    /// Delta rounds absorbed in place within the per-row slack.
    DeltaPatched,
    /// Delta rounds that exhausted the slack and fell back to a rebuild.
    DeltaRebuilds,
    /// Arc-slot bytes written by slack-exhaustion snapshot rebuilds.
    RebuildBytes,
    /// RNG draws consumed by skip-sampling the flip calendar.
    RngDraws,
    /// Candidate pairs visited by the geometric bucket scan.
    BucketScanVisits,
    /// Protocol rounds driven across all trials.
    Rounds,
    /// Trials executed.
    Trials,
    /// Worker subprocesses respawned after a death.
    WorkerRespawns,
    /// Work items retried after a worker failure.
    WorkerRetries,
    /// Worker deaths detected (failed round trips).
    WorkerDeaths,
    /// Epidemic infection events (SIS/SIR/SIRS), initial seeds included.
    Infections,
    /// Epidemic recovery events (infectious → immune/removed/susceptible).
    Recoveries,
    /// Push transmissions performed by the push-only rumor protocol.
    RumorPushes,
    /// Honest nodes that adopted a tampered message from a Byzantine or
    /// tampered peer.
    TamperedAdoptions,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 17] = [
        Counter::EdgeBirths,
        Counter::EdgeDeaths,
        Counter::DeltaRounds,
        Counter::DeltaPatched,
        Counter::DeltaRebuilds,
        Counter::RebuildBytes,
        Counter::RngDraws,
        Counter::BucketScanVisits,
        Counter::Rounds,
        Counter::Trials,
        Counter::WorkerRespawns,
        Counter::WorkerRetries,
        Counter::WorkerDeaths,
        Counter::Infections,
        Counter::Recoveries,
        Counter::RumorPushes,
        Counter::TamperedAdoptions,
    ];

    /// The counter's snake_case name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EdgeBirths => "edge_births",
            Counter::EdgeDeaths => "edge_deaths",
            Counter::DeltaRounds => "delta_rounds",
            Counter::DeltaPatched => "delta_patched",
            Counter::DeltaRebuilds => "delta_rebuilds",
            Counter::RebuildBytes => "rebuild_bytes",
            Counter::RngDraws => "rng_draws",
            Counter::BucketScanVisits => "bucket_scan_visits",
            Counter::Rounds => "rounds",
            Counter::Trials => "trials",
            Counter::WorkerRespawns => "worker_respawns",
            Counter::WorkerRetries => "worker_retries",
            Counter::WorkerDeaths => "worker_deaths",
            Counter::Infections => "infections",
            Counter::Recoveries => "recoveries",
            Counter::RumorPushes => "rumor_pushes",
            Counter::TamperedAdoptions => "tampered_adoptions",
        }
    }
}

/// Per-round gauges: repeated samples of an instantaneous value, summarized
/// as count/mean/min/max.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Informed-node count sampled once per protocol round.
    InformedPerRound,
    /// Coordinator work-queue depth sampled at each push.
    QueueDepth,
}

impl Gauge {
    /// Every gauge, in rendering order.
    pub const ALL: [Gauge; 2] = [Gauge::InformedPerRound, Gauge::QueueDepth];

    /// The gauge's snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::InformedPerRound => "informed_per_round",
            Gauge::QueueDepth => "queue_depth",
        }
    }
}

/// The fixed span vocabulary. [`span`] names outside this list are ignored
/// (with a debug assertion to catch typos).
pub const SPAN_NAMES: [&str; 4] = ["advance", "trial", "cell", "worker_round_trip"];

/// Buckets in each span's log2 latency histogram. Bucket 0 holds sub-ns
/// (zero) readings; bucket `b ≥ 1` holds durations in `[2^(b-1), 2^b)` ns;
/// the last bucket is open-ended (≥ 2^46 ns ≈ 19.5 h), so nothing is ever
/// dropped.
pub const SPAN_HIST_BUCKETS: usize = 48;

/// The histogram bucket a duration of `ns` nanoseconds falls into.
#[inline]
pub fn hist_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((64 - ns.leading_zeros()) as usize).min(SPAN_HIST_BUCKETS - 1)
    }
}

/// A representative duration (ns) for histogram bucket `b`: the arithmetic
/// midpoint of the bucket's range (lower bound × 1.5 for the open-ended top
/// bucket). Used when reading percentiles back out of the histogram.
#[inline]
pub fn hist_bucket_mid_ns(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => {
            let lower = 1u64 << (b - 1);
            lower + lower / 2
        }
    }
}

// ---------------------------------------------------------------------------
// Static recorder state

static ENABLED: AtomicBool = AtomicBool::new(false);

static COUNTERS: [AtomicU64; Counter::ALL.len()] =
    [const { AtomicU64::new(0) }; Counter::ALL.len()];

/// One gauge's aggregate state: sample count, sum, min, max.
struct GaugeCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

static GAUGES: [GaugeCell; Gauge::ALL.len()] = [const {
    GaugeCell {
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        min: AtomicU64::new(u64::MAX),
        max: AtomicU64::new(0),
    }
}; Gauge::ALL.len()];

/// One span's timing state: exact integer aggregates plus the log2 latency
/// histogram. Entirely fixed-size — no allocation anywhere in the recording
/// path. Mutex-protected: spans are coarse (per round at the finest), so an
/// uncontended lock per record is well inside budget.
struct SpanState {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    hist: [u64; SPAN_HIST_BUCKETS],
}

impl SpanState {
    const fn new() -> SpanState {
        SpanState {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            hist: [0; SPAN_HIST_BUCKETS],
        }
    }

    fn reset(&mut self) {
        *self = SpanState::new();
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.hist[hist_bucket(ns)] += 1;
    }
}

static SPANS: [Mutex<SpanState>; SPAN_NAMES.len()] =
    [const { Mutex::new(SpanState::new()) }; SPAN_NAMES.len()];

// ---------------------------------------------------------------------------
// Recording API

/// Whether a recorder is currently installed. The single branch every
/// recording entry point takes first; inlined so the disabled path costs one
/// relaxed load.
#[inline(always)]
pub fn installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resets every counter, gauge, and span histogram and enables recording.
/// Purely zeroes static state — the recorder never allocates.
pub fn install() {
    ENABLED.store(false, Ordering::SeqCst);
    for c in &COUNTERS {
        c.store(0, Ordering::SeqCst);
    }
    for g in &GAUGES {
        g.count.store(0, Ordering::SeqCst);
        g.sum.store(0, Ordering::SeqCst);
        g.min.store(u64::MAX, Ordering::SeqCst);
        g.max.store(0, Ordering::SeqCst);
    }
    for s in &SPANS {
        s.lock().expect("span lock").reset();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables recording. Accumulated values stay readable via [`snapshot`]
/// until the next [`install`].
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Adds `n` to a counter. No-op unless a recorder is installed. Hot loops
/// should accumulate locally and call this once per round or per call.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if installed() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Records one snapshot-delta round: bumps [`Counter::DeltaRounds`] and the
/// patched/rebuilt split (plus [`Counter::RebuildBytes`] for a rebuild).
/// Takes plain values rather than `meg-graph`'s `DeltaOutcome` so the graph
/// crate stays below this one in the dependency DAG.
#[inline]
pub fn record_delta(rebuilt: bool, rebuild_bytes: u64) {
    if installed() {
        add(Counter::DeltaRounds, 1);
        if rebuilt {
            add(Counter::DeltaRebuilds, 1);
            add(Counter::RebuildBytes, rebuild_bytes);
        } else {
            add(Counter::DeltaPatched, 1);
        }
    }
}

/// Records one gauge sample. No-op unless a recorder is installed.
#[inline]
pub fn sample(gauge: Gauge, value: u64) {
    if installed() {
        let g = &GAUGES[gauge as usize];
        g.count.fetch_add(1, Ordering::Relaxed);
        g.sum.fetch_add(value, Ordering::Relaxed);
        g.min.fetch_min(value, Ordering::Relaxed);
        g.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// An in-flight span timing; records the elapsed wall time on drop. Inert
/// (no clock read, nothing recorded) when no recorder is installed.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    slot: Option<(usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((slot, started)) = self.slot.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if installed() {
                SPANS[slot].lock().expect("span lock").record(ns);
            }
        }
    }
}

/// Starts timing a span. `name` must be one of [`SPAN_NAMES`]; unknown
/// names are ignored (debug builds assert). The monotonic clock is read only
/// while a recorder is installed, and only here and at guard drop — never
/// inside RNG-consuming code.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !installed() {
        return SpanGuard { slot: None };
    }
    let slot = SPAN_NAMES.iter().position(|&s| s == name);
    debug_assert!(slot.is_some(), "unknown span name {name:?}");
    SpanGuard {
        slot: slot.map(|i| (i, Instant::now())),
    }
}

// ---------------------------------------------------------------------------
// Snapshots and rendering

/// Aggregate statistics of one gauge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeStats {
    /// Gauge name.
    pub name: &'static str,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when no samples were recorded).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl GaugeStats {
    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn empty(name: &'static str) -> GaugeStats {
        GaugeStats {
            name,
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// Pools another gauge's statistics into this one. Exact and
    /// order-independent: min/max treat a zero-count side as the identity.
    pub fn merge(&mut self, other: &GaugeStats) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Aggregate statistics of one span: exact integer-nanosecond aggregates
/// plus a [`SPAN_HIST_BUCKETS`]-bucket log2 latency histogram from which
/// p50/p90/p99 are read.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: &'static str,
    /// Number of timings recorded.
    pub count: u64,
    /// Total recorded nanoseconds.
    pub total_ns: u64,
    /// Fastest timing in nanoseconds (0 with no samples).
    pub min_ns: u64,
    /// Slowest timing in nanoseconds.
    pub max_ns: u64,
    /// Log2 latency histogram; see [`hist_bucket`] for the bucket scheme.
    pub hist: [u64; SPAN_HIST_BUCKETS],
}

impl SpanStats {
    fn empty(name: &'static str) -> SpanStats {
        SpanStats {
            name,
            count: 0,
            total_ns: 0,
            min_ns: 0,
            max_ns: 0,
            hist: [0; SPAN_HIST_BUCKETS],
        }
    }

    /// Total recorded milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }

    /// Fastest timing in milliseconds.
    pub fn min_ms(&self) -> f64 {
        self.min_ns as f64 / 1e6
    }

    /// Slowest timing in milliseconds.
    pub fn max_ms(&self) -> f64 {
        self.max_ns as f64 / 1e6
    }

    /// The `q`-quantile (`0 < q ≤ 1`) read from the histogram, in
    /// nanoseconds: the representative midpoint of the bucket holding the
    /// `⌈q·count⌉`-th smallest sample. 0 with no samples.
    pub fn percentile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.hist.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return hist_bucket_mid_ns(b);
            }
        }
        hist_bucket_mid_ns(SPAN_HIST_BUCKETS - 1)
    }

    /// The `q`-quantile in milliseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile_ns(q) as f64 / 1e6
    }

    /// Median latency (ms), from the histogram.
    pub fn p50_ms(&self) -> f64 {
        self.percentile_ms(0.50)
    }

    /// 90th-percentile latency (ms), from the histogram.
    pub fn p90_ms(&self) -> f64 {
        self.percentile_ms(0.90)
    }

    /// 99th-percentile latency (ms), from the histogram.
    pub fn p99_ms(&self) -> f64 {
        self.percentile_ms(0.99)
    }

    /// Pools another span's statistics into this one: counts, totals, and
    /// histogram buckets sum exactly; min/max treat a zero-count side as the
    /// identity. Integer arithmetic throughout, so pooling is associative
    /// and commutative.
    pub fn merge(&mut self, other: &SpanStats) {
        if other.count == 0 {
            return;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
    }
}

/// A point-in-time copy of every counter, gauge, and span.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge's aggregate statistics, in [`Gauge::ALL`] order.
    pub gauges: Vec<GaugeStats>,
    /// Every span's aggregate statistics, in [`SPAN_NAMES`] order.
    pub spans: Vec<SpanStats>,
}

/// Reads the current value of every counter, gauge, and span. Valid whether
/// or not recording is currently enabled.
pub fn snapshot() -> MetricsSnapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), COUNTERS[c as usize].load(Ordering::SeqCst)))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| {
            let cell = &GAUGES[g as usize];
            let count = cell.count.load(Ordering::SeqCst);
            GaugeStats {
                name: g.name(),
                count,
                sum: cell.sum.load(Ordering::SeqCst),
                min: if count == 0 {
                    0
                } else {
                    cell.min.load(Ordering::SeqCst)
                },
                max: cell.max.load(Ordering::SeqCst),
            }
        })
        .collect();
    let spans = SPAN_NAMES
        .iter()
        .zip(&SPANS)
        .map(|(&name, state)| {
            let st = state.lock().expect("span lock");
            SpanStats {
                name,
                count: st.count,
                total_ns: st.total_ns,
                min_ns: if st.count == 0 { 0 } else { st.min_ns },
                max_ns: st.max_ns,
                hist: st.hist,
            }
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        spans,
    }
}

impl MetricsSnapshot {
    /// The all-zero snapshot over the full vocabulary: the identity element
    /// of [`MetricsSnapshot::merge`].
    pub fn empty() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL.iter().map(|&c| (c.name(), 0)).collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| GaugeStats::empty(g.name()))
                .collect(),
            spans: SPAN_NAMES.iter().map(|&s| SpanStats::empty(s)).collect(),
        }
    }

    /// Pools `other` into `self`: counters summed, gauge aggregates
    /// combined, span histograms added bucket-wise. Matching is by name, so
    /// the operand's ordering is irrelevant; names `self` does not carry are
    /// ignored. All-integer arithmetic makes the operation associative and
    /// commutative with [`MetricsSnapshot::empty`] as identity — worker
    /// snapshots can be merged in arrival order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &mut self.counters {
            *v += other.counter(name);
        }
        for g in &mut self.gauges {
            if let Some(og) = other.gauges.iter().find(|og| og.name == g.name) {
                g.merge(og);
            }
        }
        for s in &mut self.spans {
            if let Some(os) = other.spans.iter().find(|os| os.name == s.name) {
                s.merge(os);
            }
        }
    }

    /// The value of the named counter (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named span's statistics, if it recorded anything is irrelevant —
    /// `None` only for names outside [`SPAN_NAMES`].
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Counter deltas since `earlier` (saturating, so an `earlier` snapshot
    /// from a different install epoch degrades to the raw values).
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .map(|&(name, v)| (name, v.saturating_sub(earlier.counter(name))))
            .collect()
    }

    /// A counters-only snapshot holding the deltas since `earlier` (gauges
    /// and spans zeroed). This is what workers ship with each response:
    /// counter deltas partition the stream exactly, so summing them on the
    /// coordinator reproduces the worker's totals.
    pub fn delta_counters_snapshot(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::empty();
        out.counters = self.counter_deltas(earlier);
        out
    }

    /// Zeroes every counter in place, keeping gauges and spans. Used when a
    /// worker's final full snapshot is folded over already-accumulated
    /// per-response counter deltas (the counters would otherwise double
    /// count).
    pub fn clear_counters(&mut self) {
        for (_, v) in &mut self.counters {
            *v = 0;
        }
    }

    /// Fraction of delta rounds that fell back to a rebuild, or `None` when
    /// no delta rounds ran.
    pub fn delta_fallback_rate(&self) -> Option<f64> {
        let rounds = self.counter("delta_rounds");
        if rounds == 0 {
            None
        } else {
            Some(self.counter("delta_rebuilds") as f64 / rounds as f64)
        }
    }

    /// Renders the human-readable metrics report (the `--metrics report`
    /// sink). Counters with value 0 are listed too: an absent signal is
    /// itself a signal.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("── metrics report ─────────────────────────────────────\n");
        out.push_str("counters\n");
        for &(name, v) in &self.counters {
            out.push_str(&format!("  {name:<22} {v}\n"));
        }
        if let Some(rate) = self.delta_fallback_rate() {
            out.push_str(&format!(
                "derived\n  {:<22} {:.2}% ({} of {} delta rounds rebuilt)\n",
                "delta_fallback_rate",
                rate * 100.0,
                self.counter("delta_rebuilds"),
                self.counter("delta_rounds"),
            ));
        }
        out.push_str("gauges                   count        mean   min   max\n");
        for g in &self.gauges {
            out.push_str(&format!(
                "  {:<22} {:>6} {:>11.2} {:>5} {:>5}\n",
                g.name,
                g.count,
                g.mean(),
                g.min,
                g.max
            ));
        }
        out.push_str(
            "spans                    count    total_ms      p50_ms      p90_ms      p99_ms\n",
        );
        for s in &self.spans {
            out.push_str(&format!(
                "  {:<22} {:>6} {:>11.3} {:>11.4} {:>11.4} {:>11.4}\n",
                s.name,
                s.count,
                s.total_ms(),
                s.p50_ms(),
                s.p90_ms(),
                s.p99_ms()
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON line (the `--metrics jsonl` sink).
    /// The object is hand-rolled: every key is a fixed identifier, so no
    /// escaping is needed and `meg-obs` stays free of JSON dependencies.
    /// (The lossless transport codec lives in `meg-engine::metrics`; this
    /// sink is for human/script consumption and reports milliseconds.)
    pub fn render_jsonl(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| {
                format!(
                    "\"{}\":{{\"count\":{},\"mean\":{:.4},\"min\":{},\"max\":{}}}",
                    g.name,
                    g.count,
                    g.mean(),
                    g.min,
                    g.max
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "\"{}\":{{\"count\":{},\"total_ms\":{:.4},\"p50_ms\":{:.5},\"p90_ms\":{:.5},\"p99_ms\":{:.5},\"max_ms\":{:.5}}}",
                    s.name,
                    s.count,
                    s.total_ms(),
                    s.p50_ms(),
                    s.p90_ms(),
                    s.p99_ms(),
                    s.max_ms()
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"spans\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            spans.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so the whole lifecycle lives in one
    // test: parallel test threads toggling ENABLED would race each other.
    #[test]
    fn recorder_lifecycle_counters_gauges_spans_and_rendering() {
        // Disabled: everything is a no-op and snapshots read zeros.
        uninstall();
        add(Counter::EdgeBirths, 5);
        sample(Gauge::QueueDepth, 9);
        drop(span("advance"));
        install();
        let zero = snapshot();
        assert_eq!(zero.counter("edge_births"), 0);
        assert_eq!(zero.gauges[1].count, 0);
        assert_eq!(zero.span("advance").unwrap().count, 0);

        // Enabled: counters accumulate, gauges summarize, spans time.
        add(Counter::EdgeBirths, 5);
        add(Counter::EdgeBirths, 2);
        add(Counter::DeltaRounds, 4);
        add(Counter::DeltaRebuilds, 1);
        sample(Gauge::InformedPerRound, 10);
        sample(Gauge::InformedPerRound, 30);
        drop(span("advance"));
        drop(span("advance"));
        let snap = snapshot();
        assert_eq!(snap.counter("edge_births"), 7);
        assert_eq!(snap.delta_fallback_rate(), Some(0.25));
        let informed = snap.gauges[0];
        assert_eq!((informed.count, informed.min, informed.max), (2, 10, 30));
        assert_eq!(informed.mean(), 20.0);
        let adv = snap.span("advance").unwrap();
        assert_eq!(adv.count, 2);
        assert!(adv.min_ns <= adv.max_ns);
        assert_eq!(adv.hist.iter().sum::<u64>(), 2);
        assert!(adv.p50_ms() <= adv.p99_ms());

        // Deltas against an earlier snapshot.
        add(Counter::EdgeBirths, 3);
        let later = snapshot();
        let deltas = later.counter_deltas(&snap);
        assert!(deltas.contains(&("edge_births", 3)));
        assert!(deltas.contains(&("delta_rounds", 0)));
        let shipped = later.delta_counters_snapshot(&snap);
        assert_eq!(shipped.counter("edge_births"), 3);
        assert_eq!(shipped.span("advance").unwrap().count, 0);

        // Rendering mentions every registered name.
        let report = later.render_report();
        let jsonl = later.render_jsonl();
        for c in Counter::ALL {
            assert!(report.contains(c.name()), "report lacks {}", c.name());
            assert!(jsonl.contains(c.name()), "jsonl lacks {}", c.name());
        }
        for s in SPAN_NAMES {
            assert!(report.contains(s) && jsonl.contains(s));
        }
        assert!(report.contains("delta_fallback_rate"));
        assert!(report.contains("p50_ms") && jsonl.contains("p99_ms"));

        // Reinstalling resets; uninstalling freezes.
        install();
        assert_eq!(snapshot().counter("edge_births"), 0);
        add(Counter::Trials, 1);
        uninstall();
        add(Counter::Trials, 1);
        assert_eq!(snapshot().counter("trials"), 1);
    }

    #[test]
    fn histogram_bucket_scheme_covers_the_full_u64_range() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1023), 10);
        assert_eq!(hist_bucket(1024), 11);
        assert_eq!(hist_bucket(u64::MAX), SPAN_HIST_BUCKETS - 1);
        // Every bucket's representative lies at its midpoint and the top
        // bucket is open-ended.
        assert_eq!(hist_bucket_mid_ns(0), 0);
        assert_eq!(hist_bucket_mid_ns(1), 1);
        assert_eq!(hist_bucket_mid_ns(3), 6); // [4, 8) → 6
        for b in 1..SPAN_HIST_BUCKETS - 1 {
            assert_eq!(hist_bucket(hist_bucket_mid_ns(b)), b);
        }
    }

    #[test]
    fn span_percentiles_read_back_from_the_histogram() {
        let mut st = SpanState::new();
        // 90 fast samples in [4, 8) ns, 10 slow ones in [1024, 2048) ns.
        for _ in 0..90 {
            st.record(5);
        }
        for _ in 0..10 {
            st.record(1500);
        }
        let stats = SpanStats {
            name: "advance",
            count: st.count,
            total_ns: st.total_ns,
            min_ns: st.min_ns,
            max_ns: st.max_ns,
            hist: st.hist,
        };
        assert_eq!(stats.count, 100);
        assert_eq!(stats.percentile_ns(0.50), 6); // bucket [4, 8)
        assert_eq!(stats.percentile_ns(0.90), 6); // rank 90 is the last fast one
        assert_eq!(stats.percentile_ns(0.99), 1536); // bucket [1024, 2048)
        assert_eq!(stats.percentile_ns(1.0), 1536);
    }

    #[test]
    fn merge_is_exact_and_treats_empty_as_identity() {
        let mut a = MetricsSnapshot::empty();
        a.counters[0].1 = 7; // edge_births
        a.gauges[0] = GaugeStats {
            name: a.gauges[0].name,
            count: 2,
            sum: 40,
            min: 10,
            max: 30,
        };
        a.spans[0].count = 1;
        a.spans[0].total_ns = 5;
        a.spans[0].min_ns = 5;
        a.spans[0].max_ns = 5;
        a.spans[0].hist[hist_bucket(5)] = 1;

        // Identity on both sides.
        let mut id_left = MetricsSnapshot::empty();
        id_left.merge(&a);
        assert_eq!(id_left, a);
        let mut with_id = a.clone();
        with_id.merge(&MetricsSnapshot::empty());
        assert_eq!(with_id, a);

        // Pooling combines min/max/count/sum and histogram buckets.
        let mut b = MetricsSnapshot::empty();
        b.counters[0].1 = 3;
        b.gauges[0] = GaugeStats {
            name: b.gauges[0].name,
            count: 1,
            sum: 2,
            min: 2,
            max: 2,
        };
        b.spans[0].count = 2;
        b.spans[0].total_ns = 3000;
        b.spans[0].min_ns = 1000;
        b.spans[0].max_ns = 2000;
        b.spans[0].hist[hist_bucket(1000)] += 1;
        b.spans[0].hist[hist_bucket(2000)] += 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.counter("edge_births"), 10);
        assert_eq!((ab.gauges[0].min, ab.gauges[0].max), (2, 30));
        let s = ab.span("advance").unwrap();
        assert_eq!((s.count, s.min_ns, s.max_ns), (3, 5, 2000));
        assert_eq!(s.hist.iter().sum::<u64>(), 3);
    }
}
