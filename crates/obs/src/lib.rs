//! # meg-obs
//!
//! Zero-overhead-when-off instrumentation for the meg workspace: monotonic
//! [`Counter`]s, per-round [`Gauge`]s, and [`span`] timings, plus
//! [`MetricsSnapshot`] rendering for the `meg-lab run --metrics` sinks.
//!
//! ## Design rules
//!
//! * **Off by default, cheap when off.** All recording entry points begin
//!   with one relaxed atomic load of the global enable flag and return
//!   immediately when no recorder is installed. No locks are taken, no
//!   clocks are read, and nothing allocates on the disabled path.
//! * **Deterministic under observation.** Recording never consumes RNG
//!   draws, never reorders work, and never feeds back into simulation
//!   branches; monotonic-clock reads happen strictly outside RNG-consuming
//!   code. Installing a recorder therefore cannot change a single emitted
//!   row byte — the `golden_rows_observed` suite enforces this.
//! * **Allocation-free recording.** [`install`] pre-warms every span
//!   reservoir to a fixed capacity; recording pushes into that capacity and
//!   degrades to aggregate-only statistics (count/total/min/max) once it is
//!   full, so a recorder-installed hot loop stays at zero allocations.
//! * **Aggregate, don't instrument iterations.** Hot loops accumulate into
//!   local variables and flush one counter add per call — per-iteration
//!   atomics are forbidden by the ≤5% overhead budget.
//!
//! ## Example
//!
//! ```
//! use meg_obs as obs;
//!
//! obs::install();
//! obs::add(obs::Counter::EdgeBirths, 3);
//! {
//!     let _guard = obs::span("advance");
//!     // ... timed work ...
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("edge_births"), 3);
//! assert_eq!(snap.span("advance").unwrap().count, 1);
//! obs::uninstall();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Registry: counters, gauges, spans

/// Monotonic event counters. Each increments forever while a recorder is
/// installed; [`install`] resets all of them to zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Edges born this run (both edge-MEG flip sampling and geometric
    /// movement deltas).
    EdgeBirths,
    /// Edges that died this run.
    EdgeDeaths,
    /// Delta rounds applied through `SnapshotBuf::apply_delta`.
    DeltaRounds,
    /// Delta rounds absorbed in place within the per-row slack.
    DeltaPatched,
    /// Delta rounds that exhausted the slack and fell back to a rebuild.
    DeltaRebuilds,
    /// Arc-slot bytes written by slack-exhaustion snapshot rebuilds.
    RebuildBytes,
    /// RNG draws consumed by skip-sampling the flip calendar.
    RngDraws,
    /// Candidate pairs visited by the geometric bucket scan.
    BucketScanVisits,
    /// Protocol rounds driven across all trials.
    Rounds,
    /// Trials executed.
    Trials,
    /// Worker subprocesses respawned after a death.
    WorkerRespawns,
    /// Work items retried after a worker failure.
    WorkerRetries,
    /// Worker deaths detected (failed round trips).
    WorkerDeaths,
}

impl Counter {
    /// Every counter, in rendering order.
    pub const ALL: [Counter; 13] = [
        Counter::EdgeBirths,
        Counter::EdgeDeaths,
        Counter::DeltaRounds,
        Counter::DeltaPatched,
        Counter::DeltaRebuilds,
        Counter::RebuildBytes,
        Counter::RngDraws,
        Counter::BucketScanVisits,
        Counter::Rounds,
        Counter::Trials,
        Counter::WorkerRespawns,
        Counter::WorkerRetries,
        Counter::WorkerDeaths,
    ];

    /// The counter's snake_case name, used in reports and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Counter::EdgeBirths => "edge_births",
            Counter::EdgeDeaths => "edge_deaths",
            Counter::DeltaRounds => "delta_rounds",
            Counter::DeltaPatched => "delta_patched",
            Counter::DeltaRebuilds => "delta_rebuilds",
            Counter::RebuildBytes => "rebuild_bytes",
            Counter::RngDraws => "rng_draws",
            Counter::BucketScanVisits => "bucket_scan_visits",
            Counter::Rounds => "rounds",
            Counter::Trials => "trials",
            Counter::WorkerRespawns => "worker_respawns",
            Counter::WorkerRetries => "worker_retries",
            Counter::WorkerDeaths => "worker_deaths",
        }
    }
}

/// Per-round gauges: repeated samples of an instantaneous value, summarized
/// as count/mean/min/max.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Informed-node count sampled once per protocol round.
    InformedPerRound,
    /// Coordinator work-queue depth sampled at each push.
    QueueDepth,
}

impl Gauge {
    /// Every gauge, in rendering order.
    pub const ALL: [Gauge; 2] = [Gauge::InformedPerRound, Gauge::QueueDepth];

    /// The gauge's snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::InformedPerRound => "informed_per_round",
            Gauge::QueueDepth => "queue_depth",
        }
    }
}

/// The fixed span vocabulary. [`span`] names outside this list are ignored
/// (with a debug assertion to catch typos).
pub const SPAN_NAMES: [&str; 4] = ["advance", "trial", "cell", "worker_round_trip"];

/// Samples kept per span for median/IQR estimation; recording beyond this
/// keeps the aggregate statistics exact but stops storing raw durations.
pub const SPAN_RESERVOIR_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Static recorder state

static ENABLED: AtomicBool = AtomicBool::new(false);

static COUNTERS: [AtomicU64; Counter::ALL.len()] =
    [const { AtomicU64::new(0) }; Counter::ALL.len()];

/// One gauge's aggregate state: sample count, sum, min, max.
struct GaugeCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

static GAUGES: [GaugeCell; Gauge::ALL.len()] = [const {
    GaugeCell {
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
        min: AtomicU64::new(u64::MAX),
        max: AtomicU64::new(0),
    }
}; Gauge::ALL.len()];

/// One span's timing state. Mutex-protected: spans are coarse (per round at
/// the finest), so an uncontended lock per record is well inside budget.
struct SpanState {
    count: u64,
    total_ms: f64,
    min_ms: f64,
    max_ms: f64,
    reservoir: Vec<f64>,
}

impl SpanState {
    const fn new() -> SpanState {
        SpanState {
            count: 0,
            total_ms: 0.0,
            min_ms: f64::INFINITY,
            max_ms: 0.0,
            reservoir: Vec::new(),
        }
    }

    fn reset(&mut self) {
        self.count = 0;
        self.total_ms = 0.0;
        self.min_ms = f64::INFINITY;
        self.max_ms = 0.0;
        self.reservoir.clear();
        self.reservoir.reserve(SPAN_RESERVOIR_CAP);
    }

    fn record(&mut self, ms: f64) {
        self.count += 1;
        self.total_ms += ms;
        self.min_ms = self.min_ms.min(ms);
        self.max_ms = self.max_ms.max(ms);
        if self.reservoir.len() < SPAN_RESERVOIR_CAP {
            self.reservoir.push(ms);
        }
    }
}

static SPANS: [Mutex<SpanState>; SPAN_NAMES.len()] =
    [const { Mutex::new(SpanState::new()) }; SPAN_NAMES.len()];

// ---------------------------------------------------------------------------
// Recording API

/// Whether a recorder is currently installed. The single branch every
/// recording entry point takes first; inlined so the disabled path costs one
/// relaxed load.
#[inline(always)]
pub fn installed() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Resets every counter, gauge, and span, pre-warms the span reservoirs
/// (the only allocations the recorder ever makes), and enables recording.
pub fn install() {
    ENABLED.store(false, Ordering::SeqCst);
    for c in &COUNTERS {
        c.store(0, Ordering::SeqCst);
    }
    for g in &GAUGES {
        g.count.store(0, Ordering::SeqCst);
        g.sum.store(0, Ordering::SeqCst);
        g.min.store(u64::MAX, Ordering::SeqCst);
        g.max.store(0, Ordering::SeqCst);
    }
    for s in &SPANS {
        s.lock().expect("span lock").reset();
    }
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disables recording. Accumulated values stay readable via [`snapshot`]
/// until the next [`install`].
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Adds `n` to a counter. No-op unless a recorder is installed. Hot loops
/// should accumulate locally and call this once per round or per call.
#[inline]
pub fn add(counter: Counter, n: u64) {
    if installed() {
        COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Records one snapshot-delta round: bumps [`Counter::DeltaRounds`] and the
/// patched/rebuilt split (plus [`Counter::RebuildBytes`] for a rebuild).
/// Takes plain values rather than `meg-graph`'s `DeltaOutcome` so the graph
/// crate stays below this one in the dependency DAG.
#[inline]
pub fn record_delta(rebuilt: bool, rebuild_bytes: u64) {
    if installed() {
        add(Counter::DeltaRounds, 1);
        if rebuilt {
            add(Counter::DeltaRebuilds, 1);
            add(Counter::RebuildBytes, rebuild_bytes);
        } else {
            add(Counter::DeltaPatched, 1);
        }
    }
}

/// Records one gauge sample. No-op unless a recorder is installed.
#[inline]
pub fn sample(gauge: Gauge, value: u64) {
    if installed() {
        let g = &GAUGES[gauge as usize];
        g.count.fetch_add(1, Ordering::Relaxed);
        g.sum.fetch_add(value, Ordering::Relaxed);
        g.min.fetch_min(value, Ordering::Relaxed);
        g.max.fetch_max(value, Ordering::Relaxed);
    }
}

/// An in-flight span timing; records the elapsed wall time on drop. Inert
/// (no clock read, nothing recorded) when no recorder is installed.
#[must_use = "a span guard records on drop; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    slot: Option<(usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((slot, started)) = self.slot.take() {
            let ms = started.elapsed().as_secs_f64() * 1e3;
            if installed() {
                SPANS[slot].lock().expect("span lock").record(ms);
            }
        }
    }
}

/// Starts timing a span. `name` must be one of [`SPAN_NAMES`]; unknown
/// names are ignored (debug builds assert). The monotonic clock is read only
/// while a recorder is installed, and only here and at guard drop — never
/// inside RNG-consuming code.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !installed() {
        return SpanGuard { slot: None };
    }
    let slot = SPAN_NAMES.iter().position(|&s| s == name);
    debug_assert!(slot.is_some(), "unknown span name {name:?}");
    SpanGuard {
        slot: slot.map(|i| (i, Instant::now())),
    }
}

// ---------------------------------------------------------------------------
// Snapshots and rendering

/// Aggregate statistics of one gauge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaugeStats {
    /// Gauge name.
    pub name: &'static str,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when no samples were recorded).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl GaugeStats {
    /// Mean sample value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Aggregate statistics of one span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpanStats {
    /// Span name.
    pub name: &'static str,
    /// Number of timings recorded.
    pub count: u64,
    /// Total recorded milliseconds.
    pub total_ms: f64,
    /// Fastest timing (0 with no samples).
    pub min_ms: f64,
    /// Slowest timing.
    pub max_ms: f64,
    /// Median over the stored reservoir (first [`SPAN_RESERVOIR_CAP`]
    /// samples).
    pub median_ms: f64,
    /// Interquartile range over the stored reservoir.
    pub iqr_ms: f64,
}

/// A point-in-time copy of every counter, gauge, and span.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge's aggregate statistics, in [`Gauge::ALL`] order.
    pub gauges: Vec<GaugeStats>,
    /// Every span's aggregate statistics, in [`SPAN_NAMES`] order.
    pub spans: Vec<SpanStats>,
}

/// Reads the current value of every counter, gauge, and span. Valid whether
/// or not recording is currently enabled.
pub fn snapshot() -> MetricsSnapshot {
    let counters = Counter::ALL
        .iter()
        .map(|&c| (c.name(), COUNTERS[c as usize].load(Ordering::SeqCst)))
        .collect();
    let gauges = Gauge::ALL
        .iter()
        .map(|&g| {
            let cell = &GAUGES[g as usize];
            let count = cell.count.load(Ordering::SeqCst);
            GaugeStats {
                name: g.name(),
                count,
                sum: cell.sum.load(Ordering::SeqCst),
                min: if count == 0 {
                    0
                } else {
                    cell.min.load(Ordering::SeqCst)
                },
                max: cell.max.load(Ordering::SeqCst),
            }
        })
        .collect();
    let spans = SPAN_NAMES
        .iter()
        .zip(&SPANS)
        .map(|(&name, state)| {
            let st = state.lock().expect("span lock");
            let (median_ms, iqr_ms) =
                match meg_stats::quantile::quantiles(&st.reservoir, &[0.25, 0.5, 0.75]) {
                    Some(qs) => (qs[1], qs[2] - qs[0]),
                    None => (0.0, 0.0),
                };
            SpanStats {
                name,
                count: st.count,
                total_ms: st.total_ms,
                min_ms: if st.count == 0 { 0.0 } else { st.min_ms },
                max_ms: st.max_ms,
                median_ms,
                iqr_ms,
            }
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        spans,
    }
}

impl MetricsSnapshot {
    /// The value of the named counter (0 for unknown names).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named span's statistics, if it recorded anything is irrelevant —
    /// `None` only for names outside [`SPAN_NAMES`].
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Counter deltas since `earlier` (saturating, so an `earlier` snapshot
    /// from a different install epoch degrades to the raw values).
    pub fn counter_deltas(&self, earlier: &MetricsSnapshot) -> Vec<(&'static str, u64)> {
        self.counters
            .iter()
            .map(|&(name, v)| (name, v.saturating_sub(earlier.counter(name))))
            .collect()
    }

    /// Fraction of delta rounds that fell back to a rebuild, or `None` when
    /// no delta rounds ran.
    pub fn delta_fallback_rate(&self) -> Option<f64> {
        let rounds = self.counter("delta_rounds");
        if rounds == 0 {
            None
        } else {
            Some(self.counter("delta_rebuilds") as f64 / rounds as f64)
        }
    }

    /// Renders the human-readable metrics report (the `--metrics report`
    /// sink). Counters with value 0 are listed too: an absent signal is
    /// itself a signal.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("── metrics report ─────────────────────────────────────\n");
        out.push_str("counters\n");
        for &(name, v) in &self.counters {
            out.push_str(&format!("  {name:<22} {v}\n"));
        }
        if let Some(rate) = self.delta_fallback_rate() {
            out.push_str(&format!(
                "derived\n  {:<22} {:.2}% ({} of {} delta rounds rebuilt)\n",
                "delta_fallback_rate",
                rate * 100.0,
                self.counter("delta_rebuilds"),
                self.counter("delta_rounds"),
            ));
        }
        out.push_str("gauges                   count        mean   min   max\n");
        for g in &self.gauges {
            out.push_str(&format!(
                "  {:<22} {:>6} {:>11.2} {:>5} {:>5}\n",
                g.name,
                g.count,
                g.mean(),
                g.min,
                g.max
            ));
        }
        out.push_str("spans                    count    total_ms   median_ms      iqr_ms\n");
        for s in &self.spans {
            out.push_str(&format!(
                "  {:<22} {:>6} {:>11.3} {:>11.4} {:>11.4}\n",
                s.name, s.count, s.total_ms, s.median_ms, s.iqr_ms
            ));
        }
        out
    }

    /// Renders the snapshot as one JSON line (the `--metrics jsonl` sink).
    /// The object is hand-rolled: every key is a fixed identifier, so no
    /// escaping is needed and `meg-obs` stays free of JSON dependencies.
    pub fn render_jsonl(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{n}\":{v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|g| {
                format!(
                    "\"{}\":{{\"count\":{},\"mean\":{:.4},\"min\":{},\"max\":{}}}",
                    g.name,
                    g.count,
                    g.mean(),
                    g.min,
                    g.max
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "\"{}\":{{\"count\":{},\"total_ms\":{:.4},\"median_ms\":{:.5},\"iqr_ms\":{:.5}}}",
                    s.name, s.count, s.total_ms, s.median_ms, s.iqr_ms
                )
            })
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"spans\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            spans.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global, so the whole lifecycle lives in one
    // test: parallel test threads toggling ENABLED would race each other.
    #[test]
    fn recorder_lifecycle_counters_gauges_spans_and_rendering() {
        // Disabled: everything is a no-op and snapshots read zeros.
        uninstall();
        add(Counter::EdgeBirths, 5);
        sample(Gauge::QueueDepth, 9);
        drop(span("advance"));
        install();
        let zero = snapshot();
        assert_eq!(zero.counter("edge_births"), 0);
        assert_eq!(zero.gauges[1].count, 0);
        assert_eq!(zero.span("advance").unwrap().count, 0);

        // Enabled: counters accumulate, gauges summarize, spans time.
        add(Counter::EdgeBirths, 5);
        add(Counter::EdgeBirths, 2);
        add(Counter::DeltaRounds, 4);
        add(Counter::DeltaRebuilds, 1);
        sample(Gauge::InformedPerRound, 10);
        sample(Gauge::InformedPerRound, 30);
        drop(span("advance"));
        drop(span("advance"));
        let snap = snapshot();
        assert_eq!(snap.counter("edge_births"), 7);
        assert_eq!(snap.delta_fallback_rate(), Some(0.25));
        let informed = snap.gauges[0];
        assert_eq!((informed.count, informed.min, informed.max), (2, 10, 30));
        assert_eq!(informed.mean(), 20.0);
        let adv = snap.span("advance").unwrap();
        assert_eq!(adv.count, 2);
        assert!(adv.total_ms >= 0.0 && adv.min_ms <= adv.max_ms);

        // Deltas against an earlier snapshot.
        add(Counter::EdgeBirths, 3);
        let later = snapshot();
        let deltas = later.counter_deltas(&snap);
        assert!(deltas.contains(&("edge_births", 3)));
        assert!(deltas.contains(&("delta_rounds", 0)));

        // Rendering mentions every registered name.
        let report = later.render_report();
        let jsonl = later.render_jsonl();
        for c in Counter::ALL {
            assert!(report.contains(c.name()), "report lacks {}", c.name());
            assert!(jsonl.contains(c.name()), "jsonl lacks {}", c.name());
        }
        for s in SPAN_NAMES {
            assert!(report.contains(s) && jsonl.contains(s));
        }
        assert!(report.contains("delta_fallback_rate"));

        // Reinstalling resets; uninstalling freezes.
        install();
        assert_eq!(snapshot().counter("edge_births"), 0);
        add(Counter::Trials, 1);
        uninstall();
        add(Counter::Trials, 1);
        assert_eq!(snapshot().counter("trials"), 1);
    }

    #[test]
    fn reservoir_degrades_to_aggregates_past_capacity() {
        let mut st = SpanState::new();
        st.reset();
        for i in 0..(SPAN_RESERVOIR_CAP + 10) {
            st.record(i as f64);
        }
        assert_eq!(st.count as usize, SPAN_RESERVOIR_CAP + 10);
        assert_eq!(st.reservoir.len(), SPAN_RESERVOIR_CAP);
        assert_eq!(st.max_ms, (SPAN_RESERVOIR_CAP + 9) as f64);
    }
}
