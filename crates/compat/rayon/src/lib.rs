//! Offline stand-in for the crates.io `rayon` crate.
//!
//! Provides the `into_par_iter()` / `par_iter()` entry points the workspace
//! uses. The owning path (`into_par_iter().map().collect()`) executes with
//! **real parallelism** on `std::thread::scope` threads, chunked by the number
//! of available cores, while preserving input order in the collected output.
//! Because the workspace's trial runner derives an independent RNG per trial
//! index, results are identical under sequential and parallel execution —
//! swapping the real rayon back in (when a registry is available) changes
//! scheduling details only, not output.
//!
//! The borrowing path (`par_iter()`) remains a sequential iterator: the
//! workspace only uses it for cheap reductions where thread fan-out would
//! cost more than it saves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of worker threads used by [`ParMap::collect`]: the
/// `RAYON_NUM_THREADS` environment variable when set (mirroring real rayon),
/// otherwise [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// An owned "parallel" iterator: the buffered items of the source iterator,
/// awaiting a [`map`](ParIter::map) stage. Mirrors the entry point of
/// `rayon::iter::IntoParallelIterator`.
#[derive(Clone, Debug)]
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParIter<T> {
    /// Attaches the map stage; the closure runs on worker threads when the
    /// pipeline is [`collect`](ParMap::collect)ed.
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the source yielded no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel pipeline produced by [`ParIter::map`]; executing it via
/// [`collect`](ParMap::collect) fans the items out across threads.
#[derive(Clone, Debug)]
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    /// Runs the pipeline and collects the mapped values **in input order**.
    ///
    /// Items are split into contiguous chunks (one per worker, workers capped
    /// at [`current_num_threads`]); each `std::thread::scope` worker maps its
    /// chunk, and the chunk outputs are concatenated in chunk order, so the
    /// result is exactly `items.map(f)` regardless of scheduling. A panic in
    /// the closure is propagated to the caller.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let ParMap { items, f } = self;
        let threads = current_num_threads().min(items.len());
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        let chunk_size = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut items = items.into_iter();
        loop {
            let chunk: Vec<T> = items.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let f = &f;
        let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// Conversion into a parallel iterator. Mirrors
/// `rayon::iter::IntoParallelIterator` for the `into_par_iter().map().collect()`
/// pipeline shape the workspace uses.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;

    /// Converts `self` into a [`ParIter`] whose `map`/`collect` pipeline runs
    /// on scoped threads.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;

    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Borrowing variant: `par_iter()` on collections. Mirrors
/// `rayon::iter::IntoParallelRefIterator`; sequential in the shim (the
/// workspace only uses it for cheap reductions).
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: 'data;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterates `&self`; sequential in the shim.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Re-exports matching `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn large_inputs_match_sequential_mapping() {
        let par: Vec<u64> = (0..10_000u64)
            .into_par_iter()
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 7)
            .collect();
        let seq: Vec<u64> = (0..10_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15) >> 7)
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn uses_multiple_threads_when_available() {
        let seen = Mutex::new(HashSet::new());
        let out: Vec<usize> = (0..4096)
            .into_par_iter()
            .map(|i| {
                seen.lock().unwrap().insert(std::thread::current().id());
                i
            })
            .collect();
        assert_eq!(out, (0..4096).collect::<Vec<_>>());
        let distinct = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(
                distinct > 1,
                "expected work on several threads, saw {distinct}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x + 1).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![41u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![42]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _: Vec<u32> = (0..64u32)
            .into_par_iter()
            .map(|i| if i == 63 { panic!("boom") } else { i })
            .collect();
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let sum: u64 = data.par_iter().sum();
        assert_eq!(sum, 6);
        assert_eq!(data.len(), 3);
    }
}
