//! Offline stand-in for the crates.io `rayon` crate.
//!
//! Provides the `into_par_iter()` / `par_iter()` entry points the workspace
//! uses, executing **sequentially** on the calling thread. Because the
//! workspace's trial runner derives an independent RNG per trial index, its
//! results are identical under sequential and parallel execution — swapping
//! the real rayon back in (when a registry is available) changes wall-clock
//! time only, not output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Conversion into a "parallel" iterator (sequential in the shim). Mirrors
/// `rayon::iter::IntoParallelIterator`; the returned iterator is the type's
/// ordinary sequential iterator, so the full `Iterator` API (`map`,
/// `filter`, `collect`, …) stands in for rayon's `ParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Converts `self` into an iterator; rayon would distribute it across a
    /// thread pool, the shim yields items in order on the calling thread.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Borrowing variant: `par_iter()` on collections. Mirrors
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: 'data;
    /// The (sequential) iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Iterates `&self`; sequential in the shim.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Re-exports matching `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn into_par_iter_preserves_order() {
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3];
        let sum: u64 = data.par_iter().sum();
        assert_eq!(sum, 6);
        assert_eq!(data.len(), 3);
    }
}
