//! Offline stand-in for the crates.io `serde_derive` proc-macro crate.
//!
//! The vendored `serde` shim defines `Serialize` / `Deserialize<'de>` as
//! marker traits (no serialization format is needed anywhere in the
//! workspace — the traits only appear as derive targets and generic
//! bounds). These derives implement those markers for the annotated type.
//!
//! Limitation: generic types are not supported — every derive target in the
//! workspace is a plain non-generic struct. A generic target fails to
//! compile with a clear error rather than silently misbehaving.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct`/`enum` keyword.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                return match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            if p.as_char() == '<' {
                                return Err(format!(
                                    "the vendored serde_derive shim does not support \
                                     generic type `{name}`"
                                ));
                            }
                        }
                        Ok(name.to_string())
                    }
                    _ => Err(format!("expected a type name after `{kw}`")),
                };
            }
        }
    }
    Err("expected a `struct` or `enum` item".to_string())
}

fn emit(input: TokenStream, render: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => render(&name).parse().expect("shim emitted invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// Derives the `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derives the `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    emit(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
