//! Offline stand-in for the crates.io `rand` crate.
//!
//! Exposes the subset of the `rand` 0.8 API used by this workspace —
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — backed by the shared
//! xoshiro256++ engine from the vendored `rand_core` shim.
//!
//! **Compatibility note:** method signatures match `rand` 0.8 closely enough
//! for every call site in the workspace, but random streams are not
//! bit-compatible with crates.io `rand`. All workspace consumers rely only on
//! determinism under a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Automatically-implemented extension trait with the user-facing sampling
/// methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`SampleStandard`] uniform
    /// distribution (`u32`, `u64`, `usize`, `f64`, `f32`, `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on an empty range, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Draws a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly over their full domain (`rand`'s `Standard`
/// distribution, reshaped as a trait on the output type).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (mirrors `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // u < 1 but start + span·u can still round up to `end`; keep
                // the half-open contract like real rand does.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete RNG types (mirrors `rand::rngs`).
pub mod rngs {
    use rand_core::{RngCore, SeedableRng, Xoshiro256PlusPlus};

    /// The workspace stand-in for `rand::rngs::StdRng`: a seeded
    /// xoshiro256++ stream (deterministic, unlike the real `StdRng`'s
    /// platform guarantees — which no consumer here relies on).
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256PlusPlus);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            StdRng(Xoshiro256PlusPlus::from_seed(seed))
        }
    }

    /// Mock RNGs for deterministic tests (mirrors `rand::rngs::mock`).
    pub mod mock {
        use rand_core::RngCore;

        /// Yields `initial`, `initial + increment`, `initial + 2·increment`,
        /// … — a mirror of `rand::rngs::mock::StepRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the stepping mock RNG.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::Rng;
    use rand_core::RngCore;

    /// Extension methods on slices (the subset of `rand::seq::SliceRandom`
    /// the workspace uses).
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Returns a uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns an iterator over `amount` distinct elements chosen
        /// uniformly without replacement (all elements if `amount` exceeds
        /// the length). Order of the returned elements is unspecified.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&y));
            let z = rng.gen_range(10u32..=12);
            assert!((10..=12).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_multiple_is_without_replacement() {
        let mut rng = StdRng::seed_from_u64(4);
        let items: Vec<u32> = (0..50).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(picked.len(), 20);
        let uniq: std::collections::HashSet<u32> = picked.iter().copied().collect();
        assert_eq!(uniq.len(), 20);
        assert!(picked.iter().all(|&x| x < 50));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
