//! Offline stand-in for the crates.io `criterion` crate.
//!
//! Exposes the subset of the criterion 0.5 API the workspace's benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`]) with a
//! deliberately simple measurement loop: each registered benchmark runs a
//! fixed warm-up iteration followed by a small timed batch, and prints
//! `name ... median time` to stdout.
//!
//! This keeps `cargo bench` functional offline (and fast enough to double as
//! a smoke test) while preserving source compatibility so the real criterion
//! can be swapped back in when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark registry (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            iterations: DEFAULT_ITERATIONS,
        }
    }

    /// Registers and immediately runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), DEFAULT_ITERATIONS, |b| f(b));
        self
    }
}

const DEFAULT_ITERATIONS: u64 = 3;

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iterations: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count. The shim maps this to a small fixed
    /// iteration count so offline bench runs stay quick.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).clamp(1, DEFAULT_ITERATIONS);
        self
    }

    /// Sets the target measurement time. Accepted for API compatibility;
    /// the shim's fixed iteration count ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets throughput reporting. Accepted for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(&label, self.iterations, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.iterations, |b| f(b));
        self
    }

    /// Finishes the group. No-op in the shim.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Throughput annotation (accepted, ignored by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    iterations: u64,
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, also forces lazy setup
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = Some(start.elapsed());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iterations: u64, mut f: F) {
    let mut b = Bencher {
        iterations,
        elapsed: None,
    };
    f(&mut b);
    match b.elapsed {
        Some(total) => {
            let per_iter = total / iterations.max(1) as u32;
            println!("bench {label:<60} {per_iter:>12.2?}/iter ({iterations} iters)");
        }
        None => println!("bench {label:<60} (no iter() call)"),
    }
}

/// Declares a function that runs the listed benchmark functions; mirrors
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that invokes the listed groups; mirrors
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_with_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        let mut seen = Vec::new();
        for &n in &[1u64, 2, 3] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| seen.push(n));
            });
        }
        group.finish();
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&3));
    }
}
