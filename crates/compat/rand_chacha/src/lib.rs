//! Offline stand-in for the crates.io `rand_chacha` crate.
//!
//! Provides [`ChaCha8Rng`] with the `rand_chacha` 0.3 API surface this
//! workspace uses (`SeedableRng::from_seed` / `seed_from_u64`, `RngCore`),
//! plus the `rand_core` re-export that callers import
//! (`use rand_chacha::rand_core::SeedableRng`).
//!
//! **Compatibility note:** the type is *named* `ChaCha8Rng` so call sites
//! compile unchanged, but it is backed by the workspace's shared
//! xoshiro256++ engine, not the ChaCha stream cipher. The workspace's
//! requirements on this type are determinism under a fixed seed, stream
//! independence across seeds, and statistical uniformity — all of which the
//! engine provides. Do not expect bit-compatibility with crates.io
//! `rand_chacha`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng, Xoshiro256PlusPlus};

/// Deterministic seeded RNG, stand-in for `rand_chacha::ChaCha8Rng`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng(Xoshiro256PlusPlus);

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        ChaCha8Rng(Xoshiro256PlusPlus::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(2009);
        let mut b = ChaCha8Rng::seed_from_u64(2009);
        assert_eq!(
            (0..32).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..32).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
