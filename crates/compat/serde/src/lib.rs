//! Offline stand-in for the crates.io `serde` crate.
//!
//! The workspace uses serde only as derive targets and generic bounds on its
//! result tables — no serialization format is exercised anywhere (the tables
//! render to ASCII/CSV by hand). The shim therefore defines
//! [`Serialize`]/[`Deserialize`] as marker traits and re-exports derives
//! that implement them, preserving source compatibility with real serde so
//! it can be swapped back in when a registry is available.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T> Deserialize<'de> for Box<T> where T: Deserialize<'de> {}

#[cfg(test)]
mod tests {
    // The derive macros emit `impl ::serde::…` paths, which only resolve
    // from *outside* this crate; the derives themselves are exercised by
    // `meg-stats` (the `Table` type) and by this crate's integration test.
    fn assert_serializable<T: crate::Serialize>() {}
    fn assert_deserializable<'de, T: crate::Deserialize<'de>>() {}

    #[test]
    fn primitive_impls_satisfy_the_bounds() {
        assert_serializable::<Vec<f64>>();
        assert_serializable::<String>();
        assert_deserializable::<Option<String>>();
        assert_deserializable::<u64>();
    }
}
