//! Exercises the shim derives from an external crate, where the emitted
//! `impl ::serde::…` paths resolve.

use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
struct Record {
    name: String,
    values: Vec<f64>,
    tag: Option<u32>,
}

#[derive(Serialize, Deserialize)]
enum Kind {
    #[allow(dead_code)]
    A,
    #[allow(dead_code)]
    B(u32),
}

fn assert_serializable<T: Serialize>(_t: &T) {}
fn assert_deserializable<'de, T: Deserialize<'de>>() {}

#[test]
fn derived_markers_compile_for_structs_and_enums() {
    let r = Record::default();
    assert_serializable(&r);
    assert_deserializable::<Record>();
    assert_serializable(&Kind::B(3));
    assert_deserializable::<Kind>();
}
