//! Offline stand-in for the crates.io `rand_core` crate.
//!
//! The build environment for this workspace has no network access to a cargo
//! registry, so the external RNG crates are replaced by small vendored shims
//! under `crates/compat/` that expose exactly the API surface the workspace
//! uses. This crate provides the two foundational traits ([`RngCore`] and
//! [`SeedableRng`]) plus the shared [`Xoshiro256PlusPlus`] engine that the
//! `rand` and `rand_chacha` shims wrap.
//!
//! **Compatibility note:** the trait signatures match the subset of
//! `rand_core` 0.6 used by this workspace, but the generated random streams
//! are *not* bit-compatible with the real crates. Every consumer in the
//! workspace only relies on determinism under a fixed seed, which the shims
//! guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random bits.
///
/// The subset of `rand_core::RngCore` used by the workspace: 32-bit and
/// 64-bit raw output. `fill_bytes`/`try_fill_bytes` are not needed and are
/// omitted.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// An RNG that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array for every RNG in the workspace).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from the full raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a single `u64`, expanding it into a full seed
    /// with the SplitMix64 sequence (mirrors `rand_core`'s behaviour in
    /// spirit, not bit-for-bit).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let out = splitmix64_mix(sm);
            let bytes = out.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 output mixing function.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The single PRNG engine backing both shim RNG types in the workspace
/// (`rand::rngs::StdRng` and `rand_chacha::ChaCha8Rng`).
///
/// xoshiro256++ by Blackman and Vigna: fast, 256 bits of state, passes the
/// standard statistical batteries, and entirely adequate for Monte-Carlo
/// simulation. Deterministic for a fixed seed.
///
/// ```
/// use rand_core::{RngCore, SeedableRng, Xoshiro256PlusPlus};
/// let mut a = Xoshiro256PlusPlus::seed_from_u64(7);
/// let mut b = Xoshiro256PlusPlus::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn from_u64_seed_words(words: [u64; 4]) -> Self {
        // All-zero state is the one invalid state for xoshiro; nudge it.
        let mut s = words;
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut words = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            words[i] = u64::from_le_bytes(b);
        }
        Self::from_u64_seed_words(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(1);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Xoshiro256PlusPlus::from_seed([0u8; 32]);
        let xs: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn output_looks_balanced() {
        let mut r = Xoshiro256PlusPlus::seed_from_u64(2009);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64_000 bits, expect ~32_000 ones; allow a generous band.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
