//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`](fn@collection::vec),
//! [`bool::ANY`], [`Just`],
//! [`ProptestConfig`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the case number and the
//!   deterministic seed that reproduces it, but inputs are not minimised.
//! * **Deterministic generation.** Each test function derives its RNG stream
//!   from a fixed master seed and the test name, so failures reproduce
//!   across runs and machines without a persistence file.
//! * Value generation is plain uniform sampling (with light endpoint biasing
//!   for inclusive float ranges) rather than proptest's recursive strategy
//!   trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

pub use rand_core::Xoshiro256PlusPlus as TestRng;
use rand_core::{RngCore, SeedableRng};

/// Runner configuration (subset of `proptest::test_runner::ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error and runner plumbing (subset of `proptest::test_runner`).
pub mod test_runner {
    /// A test-case failure carrying its message; produced by the
    /// `prop_assert*` macros and turned into a panic by the runner.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// A generator of values of type `Value` (shrink-free analogue of
/// `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<B, F: Fn(Self::Value) -> B>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, B, F: Fn(S::Value) -> B> Strategy for Map<S, F> {
    type Value = B;
    fn generate(&self, rng: &mut TestRng) -> B {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

fn unit_f64(rng: &mut TestRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // start + span·u can round up to `end` for u near 1; keep half-open.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Bias lightly toward the endpoints: inclusive float ranges in tests
        // usually exist precisely to exercise the boundary values.
        match rng.next_u64() % 50 {
            0 => lo,
            1 => hi,
            _ => lo + (hi - lo) * unit_f64(rng),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand_core::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as the size argument of [`vec`](fn@vec): an exact
    /// size or a range of sizes.
    pub trait SizeRange {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// Builds a [`VecStrategy`]; mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand_core::RngCore;

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans; mirrors `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Re-exports matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

const MASTER_SEED: u64 = 0x4D45_475F_5052_4F50; // "MEG_PROP"

/// Derives the per-case RNG for `(test name, case index)`. Public so the
/// [`proptest!`] expansion can call it; not part of the emulated API.
pub fn case_rng(test_name: &str, case: u64) -> TestRng {
    let mut h = MASTER_SEED;
    for b in test_name.bytes() {
        h = splitmix(h ^ b as u64);
    }
    TestRng::seed_from_u64(splitmix(h ^ case))
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Executes the body closure over `config.cases` generated cases, panicking
/// with diagnostics on the first failure. Public for the [`proptest!`]
/// expansion; not part of the emulated API.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    for case in 0..config.cases as u64 {
        let mut rng = case_rng(test_name, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest failure in `{test_name}` at case {case}/{total}: {e}",
                total = config.cases
            );
        }
    }
}

/// Defines property-test functions; mirrors `proptest::proptest!`.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..100, (a, b) in some_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat_param in $strat:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |__meg_rng| {
                    let ( $($pat,)+ ) =
                        ( $( $crate::Strategy::generate(&($strat), __meg_rng), )+ );
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the current
/// case fails with the formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts two values are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Asserts two values differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::case_rng("ranges", 0);
        for _ in 0..1000 {
            let x = (5usize..17).generate(&mut rng);
            assert!((5..17).contains(&x));
            let y = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&y));
            let z = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn inclusive_float_range_hits_endpoints() {
        let mut rng = crate::case_rng("endpoints", 0);
        let xs: Vec<f64> = (0..2000)
            .map(|_| (0.0f64..=1.0).generate(&mut rng))
            .collect();
        assert!(xs.contains(&0.0));
        assert!(xs.contains(&1.0));
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = crate::case_rng("vec", 0);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..10, 3usize..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = crate::collection::vec(0u32..10, 5usize).generate(&mut rng);
        assert_eq!(exact.len(), 5);
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut rng = crate::case_rng("flat_map", 0);
        let strat = (2usize..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, n)));
        for _ in 0..200 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn map_transforms_values() {
        let mut rng = crate::case_rng("map", 0);
        let strat = (0u64..100).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 200);
        }
    }

    #[test]
    fn case_rng_is_deterministic_per_name_and_case() {
        use rand_core::RngCore;
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::case_rng("t", 4);
        assert_ne!(b.next_u64(), c.next_u64());
    }

    mod macro_smoke {
        use crate::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn tuple_patterns_and_multiple_args(
                (n, v) in (1usize..20).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..100, n))),
                flag in crate::bool::ANY,
            ) {
                prop_assert_eq!(v.len(), n);
                prop_assert!(n >= 1, "n was {}", n);
                if flag {
                    prop_assert_ne!(n, 0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failing_property_panics_with_diagnostics() {
        crate::run_cases(&ProptestConfig::with_cases(10), "always_fails", |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
