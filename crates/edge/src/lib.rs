//! # meg-edge
//!
//! Edge-Markovian evolving graphs (Section 4 of the paper): every one of the
//! `C(n, 2)` potential edges evolves as an independent two-state Markov chain
//! with birth rate `p` and death rate `q`. The stationary snapshot is the
//! Erdős–Rényi graph `G(n, p̂)` with `p̂ = p/(p+q)`.
//!
//! Two evolution engines implement the same model:
//!
//! * [`DenseEdgeMeg`] — one bit of state per potential
//!   edge, `O(n²)` work per step; exact and simple, the reference engine.
//! * [`SparseEdgeMeg`] — stores only the alive edges
//!   and samples births by geometric skip-sampling over the pair indices, so a
//!   step costs `O(m_alive + births)`; this is what makes the sparse regimes
//!   (`p̂ = Θ(log n / n)`, `n` up to 10⁵⁻⁶) tractable.
//!
//! Both engines additionally support `Stepping::Transitions`
//! (`meg_core::evolving::Stepping`): holding times of the per-edge chain are
//! geometric, so instead of a coin per pair per round only the *flips* are
//! sampled (skip-sampling = walking the next-flip-time calendar) and applied
//! to the snapshot as a CSR delta. Same process, different RNG schedule; the
//! `stepping_equivalence` test suite pins the statistical equivalence.
//!
//! [`init`] provides the stationary / empty / full initialisations used by the
//! stationary-vs-worst-case gap experiments.
//!
//! ## Example
//!
//! The dense and sparse engines implement the same model; under the same
//! parameters and budget both flood completely in the connected regime:
//!
//! ```
//! use meg_core::flooding::flood;
//! use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
//!
//! let n = 400;
//! let p_hat = 3.0 * (n as f64).ln() / n as f64;
//! let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
//!
//! let dense_time = flood(&mut DenseEdgeMeg::stationary(params, 7), 0, 10_000)
//!     .flooding_time()
//!     .expect("dense engine floods");
//! let sparse_time = flood(&mut SparseEdgeMeg::stationary(params, 7), 0, 10_000)
//!     .flooding_time()
//!     .expect("sparse engine floods");
//! // Same model ⇒ same order of magnitude (a few rounds above threshold).
//! assert!(dense_time <= 20 && sparse_time <= 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod init;
pub mod model;
pub mod sparse;

pub use dense::DenseEdgeMeg;
pub use model::EdgeMegParams;
pub use sparse::SparseEdgeMeg;
