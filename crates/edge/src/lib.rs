//! # meg-edge
//!
//! Edge-Markovian evolving graphs (Section 4 of the paper): every one of the
//! `C(n, 2)` potential edges evolves as an independent two-state Markov chain
//! with birth rate `p` and death rate `q`. The stationary snapshot is the
//! Erdős–Rényi graph `G(n, p̂)` with `p̂ = p/(p+q)`.
//!
//! Two evolution engines implement the same model:
//!
//! * [`DenseEdgeMeg`] — one bit of state per potential
//!   edge, `O(n²)` work per step; exact and simple, the reference engine.
//! * [`SparseEdgeMeg`] — stores only the alive edges
//!   and samples births by geometric skip-sampling over the pair indices, so a
//!   step costs `O(m_alive + births)`; this is what makes the sparse regimes
//!   (`p̂ = Θ(log n / n)`, `n` up to 10⁵⁻⁶) tractable.
//!
//! [`init`] provides the stationary / empty / full initialisations used by the
//! stationary-vs-worst-case gap experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod init;
pub mod model;
pub mod sparse;

pub use dense::DenseEdgeMeg;
pub use model::EdgeMegParams;
pub use sparse::SparseEdgeMeg;
