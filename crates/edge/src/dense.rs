//! Dense edge-MEG engine: one explicit Markov-chain state per potential edge.
//!
//! Under the default [`Stepping::PerPair`] every step touches all `C(n, 2)`
//! pairs, so stepping is `O(n²)` per snapshot. It is the exact,
//! obviously-correct reference used to validate the sparse engine, and it is
//! perfectly adequate for the dense regimes (`p̂ = Ω(1)`) and for `n` up to a
//! few thousand.
//!
//! The per-pair states live in a word-packed [`PairBits`] (64 pairs per
//! `u64`), not a `Vec<bool>`: stepping runs word-at-a-time through
//! [`meg_markov::WordStepper`] (one integer-threshold draw per pair, the
//! exact `gen_bool` schedule, so trajectories are bit-identical to the old
//! byte-per-pair loop), flip counts are `XOR` + `count_ones` per word — cheap
//! enough to compute whether or not a recorder is installed, which removed
//! the old observed/unobserved loop split — and snapshot rebuilds walk set
//! bits with `trailing_zeros` instead of scanning all `C(n, 2)` flags.
//!
//! [`Stepping::Transitions`] keeps the same per-pair state for `O(1)`
//! membership tests (now single-bit probes) but steps by *flips only*:
//! holding times of the two-state chain are geometric, so deaths are
//! skip-sampled as positions in a flat alive-index array (rate `q`) and
//! births as pair indices over the whole triangle (rate `p`, pre-step-alive
//! candidates rejected). The flips are applied to the snapshot as a CSR delta
//! ([`SnapshotBuf::apply_delta`]) instead of rebuilding it, making a round
//! `O(1 + p·C(n,2) + q·|E|)` — sub-linear in the pair count for the sparse
//! and moderate regimes the paper's theorems live in.

use crate::model::EdgeMegParams;
use crate::sparse::sample_bernoulli_indices;
use meg_core::evolving::{EvolvingGraph, InitialDistribution, Stepping};
use meg_graph::generators::pair_from_index;
use meg_graph::{Node, PairBits, SnapshotBuf};
use meg_markov::{bernoulli_word, gen_bool_threshold, WordStepper};
use meg_obs as obs;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Spare target slots reserved per CSR row by the transition-stepping path,
/// so a typical round's births fit without a rebuild.
pub(crate) const DELTA_SLACK: u32 = 4;

/// Edge-MEG with a dense per-pair state vector.
#[derive(Clone, Debug)]
pub struct DenseEdgeMeg {
    params: EdgeMegParams,
    /// Bit `k` is the state of the pair with linear index `k`, packed 64 per
    /// word (tail bits of the last word are zero — the `PairBits` invariant).
    alive: PairBits,
    /// Precomputed integer-threshold word stepper for `chain`.
    stepper: WordStepper,
    rng: StdRng,
    snapshot: SnapshotBuf,
    time: u64,
    stepping: Stepping,
    /// Flat array of alive pair indices (transition stepping only): deaths
    /// are skip-sampled as positions in this array and swap-removed.
    alive_idx: Vec<u32>,
    /// Whether the snapshot currently mirrors `alive` (transition stepping
    /// builds it once, then maintains it by deltas).
    snapshot_synced: bool,
    /// Scratch: sampled birth pair indices of the current round.
    birth_idx: Vec<u32>,
    /// Scratch: sampled death positions into `alive_idx` (increasing).
    death_pos: Vec<u32>,
    /// Scratch: this round's flips as endpoint pairs, fed to `apply_delta`.
    births: Vec<(Node, Node)>,
    deaths: Vec<(Node, Node)>,
}

/// Pushes every set pair of `alive` into `snapshot` in ascending pair-index
/// order — which *is* row-major order over the upper triangle, so the edge
/// sequence is identical to the old full scan. The row of each set bit is
/// tracked monotonically (rows shrink as `a` grows: row `a` holds the
/// `n−1−a` pairs `(a, a+1) .. (a, n−1)`), so the walk is `O(words + n + m)`
/// instead of `O(n²)`.
fn push_alive_edges(alive: &PairBits, n: usize, snapshot: &mut SnapshotBuf) {
    let mut a = 0usize;
    let mut row_start = 0usize;
    let mut row_len = n.saturating_sub(1);
    alive.for_each_set_bit(|k| {
        while k >= row_start + row_len {
            row_start += row_len;
            row_len -= 1;
            a += 1;
        }
        let b = a + 1 + (k - row_start);
        snapshot.push_edge(a as Node, b as Node);
    });
}

impl DenseEdgeMeg {
    /// Creates the evolving graph with the given initial distribution and
    /// the default per-pair stepping.
    pub fn new(params: EdgeMegParams, init: InitialDistribution, seed: u64) -> Self {
        Self::with_stepping(params, init, Stepping::PerPair, seed)
    }

    /// Creates the evolving graph with an explicit stepping mode.
    ///
    /// Both modes sample the same process; they consume randomness in a
    /// different order, so trajectories at equal seeds differ (the
    /// `stepping_equivalence` suite checks the laws agree). The initial state
    /// is drawn identically, so `G_0` matches across modes at equal seeds.
    pub fn with_stepping(
        params: EdgeMegParams,
        init: InitialDistribution,
        stepping: Stepping,
        seed: u64,
    ) -> Self {
        let chain = params.chain();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_pairs = params.num_pairs() as usize;
        let alive: PairBits = match init {
            InitialDistribution::Empty => PairBits::new(num_pairs),
            InitialDistribution::Full => PairBits::full(num_pairs),
            InitialDistribution::Stationary => {
                // One Bernoulli(p̂) per pair in ascending index order — the
                // integer-threshold word fill consumes the RNG identically
                // to a scalar `gen_bool(phat)` loop.
                let phat = chain.stationary_edge_probability();
                let threshold = gen_bool_threshold(phat);
                let mut bits = PairBits::new(num_pairs);
                let n_words = bits.words().len();
                let last_bits = bits.last_word_bits();
                for (wi, w) in bits.words_mut().iter_mut().enumerate() {
                    let nbits = if wi + 1 == n_words { last_bits } else { 64 };
                    *w = bernoulli_word(threshold, nbits, &mut rng);
                }
                bits
            }
        };
        let mut alive_idx = Vec::new();
        if stepping == Stepping::Transitions {
            assert!(
                params.num_pairs() <= u32::MAX as u64,
                "transition stepping indexes pairs with u32; n={} has too many pairs",
                params.n
            );
            alive.for_each_set_bit(|k| alive_idx.push(k as u32));
        }
        DenseEdgeMeg {
            params,
            alive,
            stepper: chain.word_stepper(),
            rng,
            snapshot: SnapshotBuf::with_nodes(params.n),
            time: 0,
            stepping,
            alive_idx,
            snapshot_synced: false,
            birth_idx: Vec::new(),
            death_pos: Vec::new(),
            births: Vec::new(),
            deaths: Vec::new(),
        }
    }

    /// Stationary-start constructor (the paper's setting).
    pub fn stationary(params: EdgeMegParams, seed: u64) -> Self {
        Self::new(params, InitialDistribution::Stationary, seed)
    }

    /// The stepping mode this engine was built with.
    pub fn stepping(&self) -> Stepping {
        self.stepping
    }

    /// The model parameters.
    pub fn params(&self) -> EdgeMegParams {
        self.params
    }

    /// Number of currently alive edges (one popcount per word).
    pub fn alive_edges(&self) -> usize {
        self.alive.count_ones()
    }

    /// The next draw of a *clone* of the engine RNG — a cursor probe for
    /// differential tests (the engine's own stream is not advanced). Two
    /// engines that have consumed the same number of draws from the same
    /// seed probe equal.
    pub fn rng_cursor_probe(&self) -> u64 {
        self.rng.clone().next_u64()
    }

    fn rebuild_snapshot(&mut self) {
        self.snapshot.begin(self.params.n);
        push_alive_edges(&self.alive, self.params.n, &mut self.snapshot);
        self.snapshot.build();
    }

    /// Transition stepping: sample only the pairs that flip this round and
    /// record them as a delta in `births`/`deaths`.
    ///
    /// Births are drawn first (against the pre-step state), because the model
    /// forbids a same-round death→rebirth: an edge alive at `t` that dies is
    /// absent at `t+1` regardless of the birth coin it would have drawn.
    ///
    /// Returns the number of RNG draws the two skip-sampling passes consumed
    /// (aggregated here, flushed to the metrics counters once per round).
    fn step_transitions(&mut self) -> u64 {
        let total = self.params.num_pairs();
        let n = self.params.n as u64;
        let p = self.params.p;
        let q = self.params.q;
        self.birth_idx.clear();
        self.death_pos.clear();
        self.births.clear();
        self.deaths.clear();
        // Births: every pair absent before this step turns on w.p. p. The
        // pre-step membership test is a single-bit probe.
        let alive = &self.alive;
        let birth_idx = &mut self.birth_idx;
        let mut draws = sample_bernoulli_indices(total, p, &mut self.rng, |k| {
            if !alive.get(k as usize) {
                birth_idx.push(k as u32);
            }
        });
        // Deaths: every alive edge dies w.p. q — sampled as *positions* in
        // the flat alive-index array (the array order is arbitrary but the
        // marks are i.i.d., so any order samples the same law).
        let death_pos = &mut self.death_pos;
        draws += sample_bernoulli_indices(self.alive_idx.len() as u64, q, &mut self.rng, |pos| {
            death_pos.push(pos as u32);
        });
        // Apply deaths in decreasing position order: swap_remove only ever
        // moves elements from beyond the positions still to be processed.
        for i in (0..self.death_pos.len()).rev() {
            let pos = self.death_pos[i] as usize;
            let k = self.alive_idx.swap_remove(pos);
            self.alive.clear(k as usize);
            let (a, b) = pair_from_index(n, k as u64);
            self.deaths.push((a as Node, b as Node));
        }
        // Apply births.
        for i in 0..self.birth_idx.len() {
            let k = self.birth_idx[i];
            self.alive.set(k as usize);
            self.alive_idx.push(k);
            let (a, b) = pair_from_index(n, k as u64);
            self.births.push((a as Node, b as Node));
        }
        draws
    }
}

impl EvolvingGraph for DenseEdgeMeg {
    fn num_nodes(&self) -> usize {
        self.params.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let _span = obs::span("advance");
        match self.stepping {
            Stepping::PerPair => {
                // Snapshot G_t reflects the current edge states; the chain
                // then moves to the states of time t+1. One stepping loop
                // serves both the observed and unobserved cases: flip counts
                // are an XOR and two popcounts per 64 pairs, cheap enough to
                // compute unconditionally (`obs::add` no-ops when no recorder
                // is installed), so observation changes neither the code path
                // nor the RNG consumption. The tail word steps only its
                // `last_word_bits()` — exactly one draw per real pair, the
                // same schedule as a scalar per-pair loop.
                self.rebuild_snapshot();
                let stepper = self.stepper;
                let rng = &mut self.rng;
                let n_words = self.alive.words().len();
                let last_bits = self.alive.last_word_bits();
                let mut born = 0u64;
                let mut died = 0u64;
                for (wi, w) in self.alive.words_mut().iter_mut().enumerate() {
                    let nbits = if wi + 1 == n_words { last_bits } else { 64 };
                    let old = *w;
                    let new = stepper.step_word(old, nbits, rng);
                    born += (new & !old).count_ones() as u64;
                    died += (old & !new).count_ones() as u64;
                    *w = new;
                }
                debug_assert!(self.alive.tail_is_clean());
                obs::add(obs::Counter::EdgeBirths, born);
                obs::add(obs::Counter::EdgeDeaths, died);
            }
            Stepping::Transitions => {
                // The snapshot persistently mirrors the edge states: built in
                // full (with row slack) on the first call, then maintained by
                // per-round deltas. The chain therefore steps at the *start*
                // of each later call — the k-th advance still returns
                // `G_{k−1}`, exactly like the per-pair path.
                if !self.snapshot_synced {
                    self.snapshot.begin(self.params.n);
                    push_alive_edges(&self.alive, self.params.n, &mut self.snapshot);
                    self.snapshot.build_with_slack(DELTA_SLACK);
                    self.snapshot_synced = true;
                } else {
                    let draws = self.step_transitions();
                    let outcome = self.snapshot.apply_delta(&self.births, &self.deaths);
                    if obs::installed() {
                        obs::add(obs::Counter::EdgeBirths, self.births.len() as u64);
                        obs::add(obs::Counter::EdgeDeaths, self.deaths.len() as u64);
                        obs::add(obs::Counter::RngDraws, draws);
                        obs::record_delta(outcome.is_rebuilt(), outcome.rebuild_bytes() as u64);
                    }
                }
            }
        }
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::{degree, Graph};

    /// The alive pairs as endpoint tuples in index order (the private-state
    /// reference the snapshots are checked against).
    fn alive_pairs(alive: &PairBits, n: usize) -> Vec<(Node, Node)> {
        let mut out = Vec::new();
        alive.for_each_set_bit(|k| {
            let (a, b) = pair_from_index(n as u64, k as u64);
            out.push((a as Node, b as Node));
        });
        out
    }

    #[test]
    fn initial_distributions() {
        let params = EdgeMegParams::new(60, 0.05, 0.05);
        let empty = DenseEdgeMeg::new(params, InitialDistribution::Empty, 1);
        assert_eq!(empty.alive_edges(), 0);
        let full = DenseEdgeMeg::new(params, InitialDistribution::Full, 1);
        assert_eq!(full.alive_edges(), 60 * 59 / 2);
        let stat = DenseEdgeMeg::stationary(params, 1);
        let expected = params.expected_stationary_edges();
        let got = stat.alive_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "stationary edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn stationary_init_matches_scalar_gen_bool_draws() {
        // The word-filled stationary start must equal a scalar
        // `gen_bool(phat)` per pair on the same stream — same bits, same
        // number of draws.
        use rand::Rng;
        let params = EdgeMegParams::new(37, 0.12, 0.3);
        let meg = DenseEdgeMeg::stationary(params, 41);
        let phat = params.chain().stationary_edge_probability();
        let mut reference = StdRng::seed_from_u64(41);
        for k in 0..params.num_pairs() as usize {
            assert_eq!(meg.alive.get(k), reference.gen_bool(phat), "pair {k}");
        }
        assert_eq!(
            meg.rng_cursor_probe(),
            reference.next_u64(),
            "RNG cursor drifted"
        );
    }

    #[test]
    fn snapshot_edge_set_equals_alive_state_exactly() {
        // The CSR snapshot must reproduce the alive pair set bit-for-bit —
        // the dense engine's private state is the independent reference the
        // snapshot-buffer construction is checked against.
        let params = EdgeMegParams::with_stationary(60, 0.15, 0.4);
        let mut meg = DenseEdgeMeg::stationary(params, 19);
        for step in 0..10 {
            let expected = alive_pairs(&meg.alive, 60);
            let snap = meg.advance();
            assert_eq!(snap.edges(), expected, "step {step}");
        }
    }

    #[test]
    fn transition_stepping_matches_g0_and_tracks_state_exactly() {
        let params = EdgeMegParams::with_stationary(80, 0.12, 0.35);
        let mut per_pair = DenseEdgeMeg::stationary(params, 99);
        let mut fast = DenseEdgeMeg::with_stepping(
            params,
            InitialDistribution::Stationary,
            Stepping::Transitions,
            99,
        );
        // The initial state is drawn identically, so G_0 agrees byte-for-byte.
        assert_eq!(per_pair.advance().edges(), fast.advance().edges());
        // Every later delta-maintained snapshot must mirror the private state
        // vector exactly (the same invariant the per-pair path is tested on).
        // Under transition stepping the chain steps at the start of `advance`,
        // so the state and the returned snapshot coincide afterwards.
        for step in 0..60 {
            fast.advance();
            let expected = alive_pairs(&fast.alive, 80);
            let mut got = fast.snapshot.edges();
            got.sort_unstable();
            assert_eq!(got, expected, "step {step}");
            assert_eq!(
                fast.snapshot.num_edges(),
                fast.alive_idx.len(),
                "step {step}"
            );
        }
    }

    #[test]
    fn snapshot_matches_alive_count() {
        let params = EdgeMegParams::new(40, 0.2, 0.3);
        let mut meg = DenseEdgeMeg::stationary(params, 7);
        for _ in 0..5 {
            let before = meg.alive_edges();
            let snap_edges = meg.advance().num_edges();
            assert_eq!(
                snap_edges, before,
                "snapshot must reflect the pre-step states"
            );
        }
        assert_eq!(meg.time(), 5);
    }

    #[test]
    fn stationary_degree_distribution_matches_erdos_renyi() {
        let params = EdgeMegParams::with_stationary(300, 0.05, 0.5);
        let mut meg = DenseEdgeMeg::stationary(params, 3);
        let snap = meg.advance();
        let stats = degree::degree_stats(snap).unwrap();
        let expected_mean = 299.0 * 0.05;
        assert!(
            (stats.mean - expected_mean).abs() < 3.0,
            "mean degree {} vs expected {expected_mean}",
            stats.mean
        );
    }

    #[test]
    fn edge_count_stays_near_stationary_level_over_time() {
        let params = EdgeMegParams::with_stationary(120, 0.1, 0.3);
        let mut meg = DenseEdgeMeg::stationary(params, 9);
        let expected = params.expected_stationary_edges();
        for _ in 0..20 {
            let edges = meg.advance().num_edges() as f64;
            assert!(
                (edges - expected).abs() < 0.35 * expected,
                "edges {edges} drifted from stationary level {expected}"
            );
        }
    }

    #[test]
    fn empty_start_grows_toward_stationarity() {
        let params = EdgeMegParams::new(80, 0.01, 0.0);
        let mut meg = DenseEdgeMeg::new(params, InitialDistribution::Empty, 5);
        let first = meg.advance().num_edges();
        assert_eq!(
            first, 0,
            "the first snapshot of an empty start has no edges"
        );
        for _ in 0..60 {
            meg.advance();
        }
        let later = meg.advance().num_edges();
        assert!(later > 0, "edges must eventually appear");
    }

    #[test]
    fn flooding_completes_in_connected_regime() {
        // p̂ = 0.08 ≫ log(200)/200 ≈ 0.026.
        let params = EdgeMegParams::with_stationary(200, 0.08, 0.5);
        let mut meg = DenseEdgeMeg::stationary(params, 11);
        let result = flood(&mut meg, 0, 1_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
        assert!(result.flooding_time().unwrap() <= 10);
    }

    #[test]
    fn frozen_chain_keeps_the_graph_fixed() {
        let params = EdgeMegParams::new(50, 0.0, 0.0);
        let mut meg = DenseEdgeMeg::stationary(params, 13);
        let a = meg.advance().num_edges();
        let b = meg.advance().num_edges();
        assert_eq!(a, b);
    }
}
