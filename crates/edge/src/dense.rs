//! Dense edge-MEG engine: one explicit Markov-chain state per potential edge.
//!
//! Every step touches all `C(n, 2)` pairs, so this engine is `O(n²)` per
//! snapshot. It is the exact, obviously-correct reference used to validate
//! the sparse engine, and it is perfectly adequate for the dense regimes
//! (`p̂ = Ω(1)`) and for `n` up to a few thousand.

use crate::model::EdgeMegParams;
use meg_core::evolving::{EvolvingGraph, InitialDistribution};
use meg_graph::{Node, SnapshotBuf};
use meg_markov::TwoStateChain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Edge-MEG with a dense per-pair state vector.
#[derive(Clone, Debug)]
pub struct DenseEdgeMeg {
    params: EdgeMegParams,
    chain: TwoStateChain,
    /// `alive[k]` is the state of the pair with linear index `k`.
    alive: Vec<bool>,
    rng: StdRng,
    snapshot: SnapshotBuf,
    time: u64,
}

impl DenseEdgeMeg {
    /// Creates the evolving graph with the given initial distribution.
    pub fn new(params: EdgeMegParams, init: InitialDistribution, seed: u64) -> Self {
        let chain = params.chain();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_pairs = params.num_pairs() as usize;
        let alive = match init {
            InitialDistribution::Empty => vec![false; num_pairs],
            InitialDistribution::Full => vec![true; num_pairs],
            InitialDistribution::Stationary => {
                let phat = chain.stationary_edge_probability();
                (0..num_pairs).map(|_| rng.gen_bool(phat)).collect()
            }
        };
        DenseEdgeMeg {
            params,
            chain,
            alive,
            rng,
            snapshot: SnapshotBuf::with_nodes(params.n),
            time: 0,
        }
    }

    /// Stationary-start constructor (the paper's setting).
    pub fn stationary(params: EdgeMegParams, seed: u64) -> Self {
        Self::new(params, InitialDistribution::Stationary, seed)
    }

    /// The model parameters.
    pub fn params(&self) -> EdgeMegParams {
        self.params
    }

    /// Number of currently alive edges.
    pub fn alive_edges(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    fn rebuild_snapshot(&mut self) {
        self.snapshot.begin(self.params.n);
        // The dense state vector is laid out row-major over the upper
        // triangle, so scan it row by row: the inner loop is a plain slice
        // walk whose pair (a, a+1+off) falls out of the induction variable —
        // same edges in the same order as `pair_from_index(n, k)` random
        // access, without the per-edge square root and without a
        // loop-carried pair counter.
        let n = self.params.n;
        let mut start = 0usize;
        for a in 0..n.saturating_sub(1) {
            let row_len = n - 1 - a;
            let row = &self.alive[start..start + row_len];
            for (off, &alive) in row.iter().enumerate() {
                if alive {
                    self.snapshot.push_edge(a as Node, (a + 1 + off) as Node);
                }
            }
            start += row_len;
        }
        self.snapshot.build();
    }
}

impl EvolvingGraph for DenseEdgeMeg {
    fn num_nodes(&self) -> usize {
        self.params.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        // Snapshot G_t reflects the current edge states; the chain then moves
        // to the states of time t+1.
        self.rebuild_snapshot();
        for state in self.alive.iter_mut() {
            *state = self.chain.step(*state, &mut self.rng);
        }
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::{degree, Graph};

    #[test]
    fn initial_distributions() {
        let params = EdgeMegParams::new(60, 0.05, 0.05);
        let empty = DenseEdgeMeg::new(params, InitialDistribution::Empty, 1);
        assert_eq!(empty.alive_edges(), 0);
        let full = DenseEdgeMeg::new(params, InitialDistribution::Full, 1);
        assert_eq!(full.alive_edges(), 60 * 59 / 2);
        let stat = DenseEdgeMeg::stationary(params, 1);
        let expected = params.expected_stationary_edges();
        let got = stat.alive_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "stationary edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn snapshot_edge_set_equals_alive_state_exactly() {
        // The CSR snapshot must reproduce the alive pair set bit-for-bit —
        // the dense engine's private state is the independent reference the
        // snapshot-buffer construction is checked against.
        let params = EdgeMegParams::with_stationary(60, 0.15, 0.4);
        let mut meg = DenseEdgeMeg::stationary(params, 19);
        for step in 0..10 {
            let expected: Vec<(Node, Node)> = meg
                .alive
                .iter()
                .enumerate()
                .filter(|(_, &alive)| alive)
                .map(|(k, _)| {
                    let (a, b) = meg_graph::generators::pair_from_index(60, k as u64);
                    (a as Node, b as Node)
                })
                .collect();
            let snap = meg.advance();
            assert_eq!(snap.edges(), expected, "step {step}");
        }
    }

    #[test]
    fn snapshot_matches_alive_count() {
        let params = EdgeMegParams::new(40, 0.2, 0.3);
        let mut meg = DenseEdgeMeg::stationary(params, 7);
        for _ in 0..5 {
            let before = meg.alive_edges();
            let snap_edges = meg.advance().num_edges();
            assert_eq!(
                snap_edges, before,
                "snapshot must reflect the pre-step states"
            );
        }
        assert_eq!(meg.time(), 5);
    }

    #[test]
    fn stationary_degree_distribution_matches_erdos_renyi() {
        let params = EdgeMegParams::with_stationary(300, 0.05, 0.5);
        let mut meg = DenseEdgeMeg::stationary(params, 3);
        let snap = meg.advance();
        let stats = degree::degree_stats(snap).unwrap();
        let expected_mean = 299.0 * 0.05;
        assert!(
            (stats.mean - expected_mean).abs() < 3.0,
            "mean degree {} vs expected {expected_mean}",
            stats.mean
        );
    }

    #[test]
    fn edge_count_stays_near_stationary_level_over_time() {
        let params = EdgeMegParams::with_stationary(120, 0.1, 0.3);
        let mut meg = DenseEdgeMeg::stationary(params, 9);
        let expected = params.expected_stationary_edges();
        for _ in 0..20 {
            let edges = meg.advance().num_edges() as f64;
            assert!(
                (edges - expected).abs() < 0.35 * expected,
                "edges {edges} drifted from stationary level {expected}"
            );
        }
    }

    #[test]
    fn empty_start_grows_toward_stationarity() {
        let params = EdgeMegParams::new(80, 0.01, 0.0);
        let mut meg = DenseEdgeMeg::new(params, InitialDistribution::Empty, 5);
        let first = meg.advance().num_edges();
        assert_eq!(
            first, 0,
            "the first snapshot of an empty start has no edges"
        );
        for _ in 0..60 {
            meg.advance();
        }
        let later = meg.advance().num_edges();
        assert!(later > 0, "edges must eventually appear");
    }

    #[test]
    fn flooding_completes_in_connected_regime() {
        // p̂ = 0.08 ≫ log(200)/200 ≈ 0.026.
        let params = EdgeMegParams::with_stationary(200, 0.08, 0.5);
        let mut meg = DenseEdgeMeg::stationary(params, 11);
        let result = flood(&mut meg, 0, 1_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
        assert!(result.flooding_time().unwrap() <= 10);
    }

    #[test]
    fn frozen_chain_keeps_the_graph_fixed() {
        let params = EdgeMegParams::new(50, 0.0, 0.0);
        let mut meg = DenseEdgeMeg::stationary(params, 13);
        let a = meg.advance().num_edges();
        let b = meg.advance().num_edges();
        assert_eq!(a, b);
    }
}
