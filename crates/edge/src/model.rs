//! Shared parameterisation of edge-MEG.

use meg_core::bounds::EdgeBounds;
use meg_core::evolving::InitialDistribution;
use meg_markov::TwoStateChain;

/// Parameters of an edge-MEG `M(n, p, q)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeMegParams {
    /// Number of nodes.
    pub n: usize,
    /// Birth rate `p`: probability that an absent edge appears in one step.
    pub p: f64,
    /// Death rate `q`: probability that a present edge disappears in one step.
    pub q: f64,
}

impl EdgeMegParams {
    /// Creates the parameter set. Panics unless `n ≥ 2` and `p, q ∈ [0, 1]`.
    pub fn new(n: usize, p: f64, q: f64) -> Self {
        assert!(n >= 2, "need at least two nodes");
        assert!((0.0..=1.0).contains(&p), "birth rate p={p} outside [0,1]");
        assert!((0.0..=1.0).contains(&q), "death rate q={q} outside [0,1]");
        EdgeMegParams { n, p, q }
    }

    /// Convenience constructor fixing the stationary edge probability `p̂` and
    /// the death rate `q`: sets `p = q·p̂/(1−p̂)` so that `p/(p+q) = p̂`.
    ///
    /// Panics if `p̂ ∈ (0, 1)` does not hold or the implied `p` exceeds 1.
    pub fn with_stationary(n: usize, p_hat: f64, q: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p_hat) && p_hat > 0.0,
            "p̂ must lie in (0, 1)"
        );
        assert!(q > 0.0 && q <= 1.0, "death rate must lie in (0, 1]");
        let p = q * p_hat / (1.0 - p_hat);
        assert!(p <= 1.0, "implied birth rate {p} exceeds 1; lower q or p̂");
        EdgeMegParams::new(n, p, q)
    }

    /// The time-independent special case `q = 1 − p` (each snapshot is an
    /// independent `G(n, p)`, the dynamic random graphs of \[10\]).
    pub fn time_independent(n: usize, p: f64) -> Self {
        EdgeMegParams::new(n, p, 1.0 - p)
    }

    /// The per-edge two-state chain.
    pub fn chain(&self) -> TwoStateChain {
        TwoStateChain::new(self.p, self.q)
    }

    /// Stationary edge probability `p̂ = p/(p+q)` (0.5 in the degenerate
    /// `p = q = 0` case, matching [`TwoStateChain::stationary`]).
    pub fn stationary_edge_probability(&self) -> f64 {
        self.chain().stationary_edge_probability()
    }

    /// The closed-form bounds object for this configuration.
    pub fn bounds(&self) -> EdgeBounds {
        EdgeBounds::new(self.n, self.stationary_edge_probability())
    }

    /// Total number of potential edges `C(n, 2)`.
    pub fn num_pairs(&self) -> u64 {
        let n = self.n as u64;
        n * (n - 1) / 2
    }

    /// Expected number of alive edges in the stationary regime.
    pub fn expected_stationary_edges(&self) -> f64 {
        self.num_pairs() as f64 * self.stationary_edge_probability()
    }

    /// Suggests the cheaper engine for this configuration: sparse when the
    /// expected stationary snapshot has fewer than ~15% of all pairs alive.
    pub fn prefers_sparse_engine(&self) -> bool {
        self.stationary_edge_probability() < 0.15
    }

    /// Expected number of edge flips per round in the stationary regime:
    /// `N·(1−p̂)·p` births plus `N·p̂·q` deaths, which are equal
    /// (detailed balance), giving `2N·pq/(p+q)`.
    ///
    /// This is the per-round work of `Stepping::Transitions`; comparing it
    /// against [`num_pairs`](EdgeMegParams::num_pairs) (the per-round work of
    /// per-pair stepping) predicts the fast path's speedup.
    pub fn expected_stationary_flips(&self) -> f64 {
        let s = self.p + self.q;
        if s == 0.0 {
            return 0.0;
        }
        2.0 * self.num_pairs() as f64 * self.p * self.q / s
    }
}

/// Re-export of the initial-distribution selector used by both engines.
pub type EdgeInit = InitialDistribution;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_probability_and_edge_count() {
        let p = EdgeMegParams::new(100, 0.02, 0.08);
        assert!((p.stationary_edge_probability() - 0.2).abs() < 1e-12);
        assert_eq!(p.num_pairs(), 4950);
        assert!((p.expected_stationary_edges() - 990.0).abs() < 1e-9);
        assert!(!p.prefers_sparse_engine());
    }

    #[test]
    fn with_stationary_inverts_correctly() {
        let params = EdgeMegParams::with_stationary(1_000, 0.01, 0.5);
        assert!((params.stationary_edge_probability() - 0.01).abs() < 1e-12);
        assert!(params.prefers_sparse_engine());
        assert_eq!(params.q, 0.5);
    }

    #[test]
    fn expected_flips_closed_form() {
        let p = EdgeMegParams::new(100, 0.02, 0.08);
        // births = N·(1−p̂)·p = 4950·0.8·0.02; deaths = N·p̂·q = 4950·0.2·0.08.
        let births = 4950.0 * 0.8 * 0.02;
        let deaths = 4950.0 * 0.2 * 0.08;
        assert!((p.expected_stationary_flips() - (births + deaths)).abs() < 1e-9);
        assert_eq!(
            EdgeMegParams::new(10, 0.0, 0.0).expected_stationary_flips(),
            0.0
        );
    }

    #[test]
    fn time_independent_case() {
        let params = EdgeMegParams::time_independent(50, 0.3);
        assert_eq!(params.q, 0.7);
        assert!((params.stationary_edge_probability() - 0.3).abs() < 1e-12);
        assert_eq!(params.chain().second_eigenvalue(), 0.0);
    }

    #[test]
    fn bounds_accessor_uses_phat() {
        let params = EdgeMegParams::with_stationary(10_000, 0.005, 0.25);
        let b = params.bounds();
        assert!((b.p_hat - 0.005).abs() < 1e-12);
        assert_eq!(b.n, 10_000);
    }

    #[test]
    #[should_panic]
    fn invalid_rates_rejected() {
        EdgeMegParams::new(10, 1.2, 0.1);
    }

    #[test]
    #[should_panic]
    fn implied_birth_rate_above_one_rejected() {
        EdgeMegParams::with_stationary(10, 0.9, 1.0);
    }
}
