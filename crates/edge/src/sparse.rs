//! Sparse edge-MEG engine.
//!
//! In the regimes the paper cares about (`p̂` around `log n / n`) the snapshot
//! has only `Θ(n log n)` edges out of `Θ(n²)` potential pairs, so touching
//! every pair per step (the dense engine) wastes almost all of its work. This
//! engine stores only the alive edges and advances the chain in
//! `O(m_alive + births)` expected time per step:
//!
//! * **deaths** — each alive edge is kept with probability `1 − q`;
//! * **births** — candidate pair indices are drawn by geometric skip-sampling
//!   over the full index space with per-pair probability `p`; candidates that
//!   are already alive are ignored (their transition is governed by the death
//!   rule), so each *absent* pair independently turns on with probability `p`,
//!   exactly as the model prescribes.

use crate::model::EdgeMegParams;
use meg_core::evolving::{EvolvingGraph, InitialDistribution};
use meg_graph::generators::pair_from_index;
use meg_graph::{Graph, Node, SnapshotBuf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Edge-MEG storing only the alive edges.
#[derive(Clone, Debug)]
pub struct SparseEdgeMeg {
    params: EdgeMegParams,
    /// Linear pair indices of the alive edges, ordered so that the death
    /// phase consumes RNG draws in a deterministic edge order (a `HashSet`
    /// here would make trajectories depend on hash-iteration order, which is
    /// randomized per instance).
    alive: BTreeSet<u64>,
    rng: StdRng,
    snapshot: SnapshotBuf,
    time: u64,
}

impl SparseEdgeMeg {
    /// Creates the evolving graph with the given initial distribution.
    pub fn new(params: EdgeMegParams, init: InitialDistribution, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_pairs = params.num_pairs();
        let alive: BTreeSet<u64> = match init {
            InitialDistribution::Empty => BTreeSet::new(),
            InitialDistribution::Full => (0..total_pairs).collect(),
            InitialDistribution::Stationary => {
                let phat = params.stationary_edge_probability();
                let mut set = BTreeSet::new();
                sample_bernoulli_indices(total_pairs, phat, &mut rng, |idx| {
                    set.insert(idx);
                });
                set
            }
        };
        SparseEdgeMeg {
            params,
            alive,
            rng,
            snapshot: SnapshotBuf::with_nodes(params.n),
            time: 0,
        }
    }

    /// Stationary-start constructor (the paper's setting).
    pub fn stationary(params: EdgeMegParams, seed: u64) -> Self {
        Self::new(params, InitialDistribution::Stationary, seed)
    }

    /// The model parameters.
    pub fn params(&self) -> EdgeMegParams {
        self.params
    }

    /// Number of currently alive edges.
    pub fn alive_edges(&self) -> usize {
        self.alive.len()
    }

    fn rebuild_snapshot(&mut self) {
        self.snapshot.begin(self.params.n);
        let n = self.params.n as u64;
        for &idx in &self.alive {
            let (a, b) = pair_from_index(n, idx);
            self.snapshot.push_edge(a as Node, b as Node);
        }
        self.snapshot.build();
    }

    fn step_chain(&mut self) {
        let total_pairs = self.params.num_pairs();
        let p = self.params.p;
        let q = self.params.q;
        // Deaths: keep each alive edge with probability 1 − q.
        if q > 0.0 {
            let rng = &mut self.rng;
            self.alive.retain(|_| !rng.gen_bool(q));
        }
        // Births: each pair that was absent *before* this step turns on with
        // probability p. Pairs that were alive before the step are skipped:
        // if they survived the death phase they stay alive anyway, and if they
        // just died the model says they need a full step absent before they
        // can be reborn. To distinguish "alive before the step" from "alive
        // after the death phase" we consult the pre-step snapshot, which holds
        // exactly the pre-step edge set.
        if p > 0.0 {
            let mut births: Vec<u64> = Vec::new();
            sample_bernoulli_indices(total_pairs, p, &mut self.rng, |idx| {
                let (a, b) = pair_from_index(self.params.n as u64, idx);
                if !self.snapshot.has_edge(a as Node, b as Node) {
                    births.push(idx);
                }
            });
            for idx in births {
                self.alive.insert(idx);
            }
        }
    }
}

/// Calls `visit` on each index in `0..total` selected independently with
/// probability `prob`, using geometric skip-sampling (expected cost
/// `O(total · prob)`).
fn sample_bernoulli_indices<R: Rng>(
    total: u64,
    prob: f64,
    rng: &mut R,
    mut visit: impl FnMut(u64),
) {
    if prob <= 0.0 || total == 0 {
        return;
    }
    if prob >= 1.0 {
        for idx in 0..total {
            visit(idx);
        }
        return;
    }
    let log_q = (1.0 - prob).ln();
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor();
        if !skip.is_finite() || skip >= (total as f64) {
            break;
        }
        idx = match idx.checked_add(skip as u64) {
            Some(v) => v,
            None => break,
        };
        if idx >= total {
            break;
        }
        visit(idx);
        idx += 1;
        if idx >= total {
            break;
        }
    }
}

impl EvolvingGraph for SparseEdgeMeg {
    fn num_nodes(&self) -> usize {
        self.params.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        self.rebuild_snapshot();
        self.step_chain();
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseEdgeMeg;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::{degree, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn skip_sampling_matches_bernoulli_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let total = 200_000u64;
        let prob = 0.01;
        let mut count = 0u64;
        let mut last = None;
        sample_bernoulli_indices(total, prob, &mut rng, |idx| {
            if let Some(prev) = last {
                assert!(idx > prev, "indices must be strictly increasing");
            }
            assert!(idx < total);
            last = Some(idx);
            count += 1;
        });
        let expected = total as f64 * prob;
        assert!(
            (count as f64 - expected).abs() < 0.1 * expected,
            "count {count} vs expected {expected}"
        );
    }

    #[test]
    fn skip_sampling_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut count = 0;
        sample_bernoulli_indices(100, 0.0, &mut rng, |_| count += 1);
        assert_eq!(count, 0);
        sample_bernoulli_indices(100, 1.0, &mut rng, |_| count += 1);
        assert_eq!(count, 100);
        sample_bernoulli_indices(0, 0.5, &mut rng, |_| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn snapshot_edge_set_equals_alive_state_exactly() {
        // The alive `BTreeSet` (private state) is the independent reference:
        // the CSR snapshot must list exactly those pairs, in index order.
        let n = 120usize;
        let params = EdgeMegParams::with_stationary(n, 0.05, 0.4);
        let mut meg = SparseEdgeMeg::stationary(params, 23);
        for step in 0..10 {
            let expected: Vec<(Node, Node)> = meg
                .alive
                .iter()
                .map(|&idx| {
                    let (a, b) = pair_from_index(n as u64, idx);
                    (a as Node, b as Node)
                })
                .collect();
            let snap = meg.advance();
            assert_eq!(snap.edges(), expected, "step {step}");
        }
    }

    #[test]
    fn stationary_start_matches_expected_edge_count() {
        let params = EdgeMegParams::with_stationary(500, 0.02, 0.5);
        let meg = SparseEdgeMeg::stationary(params, 2);
        let expected = params.expected_stationary_edges();
        let got = meg.alive_edges() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "alive {got} vs expected {expected}"
        );
    }

    #[test]
    fn initial_distributions() {
        let params = EdgeMegParams::new(30, 0.1, 0.1);
        assert_eq!(
            SparseEdgeMeg::new(params, InitialDistribution::Empty, 0).alive_edges(),
            0
        );
        assert_eq!(
            SparseEdgeMeg::new(params, InitialDistribution::Full, 0).alive_edges(),
            30 * 29 / 2
        );
    }

    #[test]
    fn edge_count_stays_near_stationary_level() {
        let params = EdgeMegParams::with_stationary(400, 0.03, 0.25);
        let mut meg = SparseEdgeMeg::stationary(params, 5);
        let expected = params.expected_stationary_edges();
        for _ in 0..30 {
            let edges = meg.advance().num_edges() as f64;
            assert!(
                (edges - expected).abs() < 0.3 * expected,
                "edges {edges} drifted from stationary level {expected}"
            );
        }
    }

    #[test]
    fn sparse_and_dense_agree_statistically() {
        // Same parameters, different engines: average snapshot degree over a
        // window must agree within a few percent.
        let params = EdgeMegParams::with_stationary(250, 0.04, 0.3);
        let mut sparse = SparseEdgeMeg::stationary(params, 21);
        let mut dense = DenseEdgeMeg::stationary(params, 22);
        let window = 20;
        let mut sparse_mean = 0.0;
        let mut dense_mean = 0.0;
        for _ in 0..window {
            sparse_mean += degree::degree_stats(sparse.advance()).unwrap().mean;
            dense_mean += degree::degree_stats(dense.advance()).unwrap().mean;
        }
        sparse_mean /= window as f64;
        dense_mean /= window as f64;
        let expected = 249.0 * 0.04;
        assert!(
            (sparse_mean - expected).abs() < 1.5,
            "sparse mean {sparse_mean}"
        );
        assert!(
            (dense_mean - expected).abs() < 1.5,
            "dense mean {dense_mean}"
        );
        assert!((sparse_mean - dense_mean).abs() < 2.0);
    }

    #[test]
    fn flooding_completes_in_connected_regime() {
        // n = 2000, p̂ = 3 log n / n ≈ 0.0114 — sparse but connected.
        let n = 2_000usize;
        let phat = 3.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, phat, 0.5);
        let mut meg = SparseEdgeMeg::stationary(params, 33);
        let result = flood(&mut meg, 0, 10_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
        let t = result.flooding_time().unwrap();
        assert!((2..=30).contains(&t), "flooding time {t}");
    }

    #[test]
    fn empty_start_takes_much_longer_than_stationary_in_sparse_regime() {
        // The "exponential gap" of Section 1 in miniature: with a tiny birth
        // rate, a stationary start floods quickly while an empty start must
        // first wait for edges to be born at all.
        let n = 300usize;
        let phat = 6.0 * (n as f64).ln() / n as f64; // ≈ 0.114
        let q = 0.002; // slow chain: edges are born very rarely (p ≈ 2.6e-4)
        let params = EdgeMegParams::with_stationary(n, phat, q);
        let mut stationary = SparseEdgeMeg::stationary(params, 44);
        let stat_time = flood(&mut stationary, 0, 100_000)
            .flooding_time()
            .expect("stationary flooding completes");
        let mut empty = SparseEdgeMeg::new(params, InitialDistribution::Empty, 45);
        let empty_time = flood(&mut empty, 0, 100_000)
            .flooding_time()
            .expect("worst-case flooding completes eventually");
        assert!(
            empty_time > 4 * stat_time,
            "empty start {empty_time} should be much slower than stationary {stat_time}"
        );
    }
}
