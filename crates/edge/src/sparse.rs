//! Sparse edge-MEG engine.
//!
//! In the regimes the paper cares about (`p̂` around `log n / n`) the snapshot
//! has only `Θ(n log n)` edges out of `Θ(n²)` potential pairs, so touching
//! every pair per step (the dense engine) wastes almost all of its work. This
//! engine stores only the alive edges and advances the chain in
//! `O(m_alive + births)` expected time per step:
//!
//! * **deaths** — each alive edge is kept with probability `1 − q`;
//! * **births** — candidate pair indices are drawn by geometric skip-sampling
//!   over the full index space with per-pair probability `p`; candidates that
//!   are already alive are ignored (their transition is governed by the death
//!   rule), so each *absent* pair independently turns on with probability `p`,
//!   exactly as the model prescribes.

use crate::dense::DELTA_SLACK;
use crate::model::EdgeMegParams;
use meg_core::evolving::{EvolvingGraph, InitialDistribution, Stepping};
use meg_graph::generators::pair_from_index;
use meg_graph::{Graph, Node, SnapshotBuf};
use meg_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// Edge-MEG storing only the alive edges.
///
/// Under the default [`Stepping::PerPair`] the alive set is a `BTreeSet`
/// (deterministic iteration order for the per-edge death draws). Under
/// [`Stepping::Transitions`] it is a flat `Vec<u32>` of pair indices instead:
/// deaths are skip-sampled as positions in that array and swap-removed,
/// births are skip-sampled pair indices checked against the pre-step snapshot
/// — no tree, no per-birth node allocation, and the snapshot is maintained by
/// deltas rather than rebuilt.
#[derive(Clone, Debug)]
pub struct SparseEdgeMeg {
    params: EdgeMegParams,
    /// Linear pair indices of the alive edges (per-pair stepping), ordered so
    /// that the death phase consumes RNG draws in a deterministic edge order
    /// (a `HashSet` here would make trajectories depend on hash-iteration
    /// order, which is randomized per instance).
    alive: BTreeSet<u64>,
    rng: StdRng,
    snapshot: SnapshotBuf,
    time: u64,
    stepping: Stepping,
    /// Flat alive pair-index array (transition stepping only; order is
    /// arbitrary after the first swap-remove, which is fine because death
    /// marks are i.i.d. across positions).
    alive_vec: Vec<u32>,
    /// Whether the snapshot currently mirrors the alive set (transition
    /// stepping builds it once, then maintains it by deltas).
    snapshot_synced: bool,
    /// Scratch buffers for the per-round flips (transition stepping).
    birth_idx: Vec<u32>,
    death_pos: Vec<u32>,
    births: Vec<(Node, Node)>,
    deaths: Vec<(Node, Node)>,
}

impl SparseEdgeMeg {
    /// Creates the evolving graph with the given initial distribution and
    /// the default per-pair stepping.
    pub fn new(params: EdgeMegParams, init: InitialDistribution, seed: u64) -> Self {
        Self::with_stepping(params, init, Stepping::PerPair, seed)
    }

    /// Creates the evolving graph with an explicit stepping mode.
    ///
    /// The initial alive set is drawn identically in both modes (same RNG
    /// draws), so `G_0` matches across modes at equal seeds; trajectories
    /// then diverge because the modes consume randomness differently.
    pub fn with_stepping(
        params: EdgeMegParams,
        init: InitialDistribution,
        stepping: Stepping,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let total_pairs = params.num_pairs();
        let mut alive: BTreeSet<u64> = BTreeSet::new();
        let mut alive_vec: Vec<u32> = Vec::new();
        match stepping {
            Stepping::PerPair => match init {
                InitialDistribution::Empty => {}
                InitialDistribution::Full => alive = (0..total_pairs).collect(),
                InitialDistribution::Stationary => {
                    let phat = params.stationary_edge_probability();
                    sample_bernoulli_indices(total_pairs, phat, &mut rng, |idx| {
                        alive.insert(idx);
                    });
                }
            },
            Stepping::Transitions => {
                assert!(
                    total_pairs <= u32::MAX as u64,
                    "transition stepping indexes pairs with u32; n={} has too many pairs",
                    params.n
                );
                match init {
                    InitialDistribution::Empty => {}
                    InitialDistribution::Full => alive_vec = (0..total_pairs as u32).collect(),
                    InitialDistribution::Stationary => {
                        let phat = params.stationary_edge_probability();
                        sample_bernoulli_indices(total_pairs, phat, &mut rng, |idx| {
                            alive_vec.push(idx as u32);
                        });
                    }
                }
            }
        }
        SparseEdgeMeg {
            params,
            alive,
            rng,
            snapshot: SnapshotBuf::with_nodes(params.n),
            time: 0,
            stepping,
            alive_vec,
            snapshot_synced: false,
            birth_idx: Vec::new(),
            death_pos: Vec::new(),
            births: Vec::new(),
            deaths: Vec::new(),
        }
    }

    /// Stationary-start constructor (the paper's setting).
    pub fn stationary(params: EdgeMegParams, seed: u64) -> Self {
        Self::new(params, InitialDistribution::Stationary, seed)
    }

    /// The model parameters.
    pub fn params(&self) -> EdgeMegParams {
        self.params
    }

    /// The stepping mode this engine was built with.
    pub fn stepping(&self) -> Stepping {
        self.stepping
    }

    /// Number of currently alive edges.
    pub fn alive_edges(&self) -> usize {
        match self.stepping {
            Stepping::PerPair => self.alive.len(),
            Stepping::Transitions => self.alive_vec.len(),
        }
    }

    fn rebuild_snapshot(&mut self) {
        self.snapshot.begin(self.params.n);
        let n = self.params.n as u64;
        for &idx in &self.alive {
            let (a, b) = pair_from_index(n, idx);
            self.snapshot.push_edge(a as Node, b as Node);
        }
        self.snapshot.build();
    }

    fn step_chain(&mut self) {
        let total_pairs = self.params.num_pairs();
        let p = self.params.p;
        let q = self.params.q;
        let record = obs::installed();
        // Deaths: keep each alive edge with probability 1 − q.
        let alive_before = self.alive.len();
        if q > 0.0 {
            let rng = &mut self.rng;
            self.alive.retain(|_| !rng.gen_bool(q));
        }
        let died = alive_before - self.alive.len();
        // Births: each pair that was absent *before* this step turns on with
        // probability p. Pairs that were alive before the step are skipped:
        // if they survived the death phase they stay alive anyway, and if they
        // just died the model says they need a full step absent before they
        // can be reborn. To distinguish "alive before the step" from "alive
        // after the death phase" we consult the pre-step snapshot, which holds
        // exactly the pre-step edge set.
        let mut born = 0u64;
        let mut draws = 0u64;
        if p > 0.0 {
            let mut births: Vec<u64> = Vec::new();
            draws = sample_bernoulli_indices(total_pairs, p, &mut self.rng, |idx| {
                let (a, b) = pair_from_index(self.params.n as u64, idx);
                if !self.snapshot.has_edge(a as Node, b as Node) {
                    births.push(idx);
                }
            });
            born = births.len() as u64;
            for idx in births {
                self.alive.insert(idx);
            }
        }
        if record {
            obs::add(obs::Counter::EdgeDeaths, died as u64);
            obs::add(obs::Counter::EdgeBirths, born);
            obs::add(obs::Counter::RngDraws, draws);
        }
    }

    /// Transition stepping: sample only the flips of this round against the
    /// flat alive array and the pre-step snapshot, recording them as a delta.
    ///
    /// Births are sampled first (rejected against the snapshot, which still
    /// mirrors the pre-step edge set) because a same-round death must not
    /// re-enable a birth; deaths are then sampled as positions in `alive_vec`
    /// and applied by swap-remove in decreasing position order.
    ///
    /// Returns the number of RNG draws the two skip-sampling passes consumed
    /// (aggregated here, flushed to the metrics counters once per round).
    fn step_transitions(&mut self) -> u64 {
        let total = self.params.num_pairs();
        let n = self.params.n as u64;
        let p = self.params.p;
        let q = self.params.q;
        self.birth_idx.clear();
        self.death_pos.clear();
        self.births.clear();
        self.deaths.clear();
        let snapshot = &self.snapshot;
        let birth_idx = &mut self.birth_idx;
        let births = &mut self.births;
        let mut draws = sample_bernoulli_indices(total, p, &mut self.rng, |idx| {
            let (a, b) = pair_from_index(n, idx);
            if !snapshot.has_edge(a as Node, b as Node) {
                birth_idx.push(idx as u32);
                births.push((a as Node, b as Node));
            }
        });
        let death_pos = &mut self.death_pos;
        draws += sample_bernoulli_indices(self.alive_vec.len() as u64, q, &mut self.rng, |pos| {
            death_pos.push(pos as u32);
        });
        for i in (0..self.death_pos.len()).rev() {
            let pos = self.death_pos[i] as usize;
            let k = self.alive_vec.swap_remove(pos);
            let (a, b) = pair_from_index(n, k as u64);
            self.deaths.push((a as Node, b as Node));
        }
        for i in 0..self.birth_idx.len() {
            self.alive_vec.push(self.birth_idx[i]);
        }
        draws
    }
}

/// Calls `visit` on each index in `0..total` selected independently with
/// probability `prob`, using geometric skip-sampling (expected cost
/// `O(total · prob)`).
///
/// This is the shared primitive behind both the sparse engine's birth phase
/// and the `Stepping::Transitions` fast path of *both* engines: the skip
/// `⌊ln U / ln(1−prob)⌋` is exactly a geometric holding time, so visiting the
/// selected indices is equivalent to walking a pre-drawn next-flip-time
/// calendar without materialising it.
///
/// Returns the number of uniform RNG draws consumed, so callers can feed the
/// `rng_draws` metrics counter without the sampler depending on `meg-obs`.
pub(crate) fn sample_bernoulli_indices<R: Rng>(
    total: u64,
    prob: f64,
    rng: &mut R,
    mut visit: impl FnMut(u64),
) -> u64 {
    if prob <= 0.0 || total == 0 {
        return 0;
    }
    if prob >= 1.0 {
        for idx in 0..total {
            visit(idx);
        }
        return 0;
    }
    let log_q = (1.0 - prob).ln();
    let mut idx: u64 = 0;
    let mut draws: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        draws += 1;
        let skip = (u.ln() / log_q).floor();
        if !skip.is_finite() || skip >= (total as f64) {
            break;
        }
        idx = match idx.checked_add(skip as u64) {
            Some(v) => v,
            None => break,
        };
        if idx >= total {
            break;
        }
        visit(idx);
        idx += 1;
        if idx >= total {
            break;
        }
    }
    draws
}

impl EvolvingGraph for SparseEdgeMeg {
    fn num_nodes(&self) -> usize {
        self.params.n
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let _span = obs::span("advance");
        match self.stepping {
            Stepping::PerPair => {
                self.rebuild_snapshot();
                self.step_chain();
            }
            Stepping::Transitions => {
                // The snapshot persistently mirrors the alive set: full build
                // with row slack on the first call, per-round deltas after
                // that (the chain steps at the start of each later call, so
                // the k-th advance still returns `G_{k−1}`).
                if !self.snapshot_synced {
                    self.snapshot.begin(self.params.n);
                    let n = self.params.n as u64;
                    for i in 0..self.alive_vec.len() {
                        let (a, b) = pair_from_index(n, self.alive_vec[i] as u64);
                        self.snapshot.push_edge(a as Node, b as Node);
                    }
                    self.snapshot.build_with_slack(DELTA_SLACK);
                    self.snapshot_synced = true;
                } else {
                    let draws = self.step_transitions();
                    let outcome = self.snapshot.apply_delta(&self.births, &self.deaths);
                    if obs::installed() {
                        obs::add(obs::Counter::EdgeBirths, self.births.len() as u64);
                        obs::add(obs::Counter::EdgeDeaths, self.deaths.len() as u64);
                        obs::add(obs::Counter::RngDraws, draws);
                        obs::record_delta(outcome.is_rebuilt(), outcome.rebuild_bytes() as u64);
                    }
                }
            }
        }
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseEdgeMeg;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::{degree, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn skip_sampling_matches_bernoulli_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let total = 200_000u64;
        let prob = 0.01;
        let mut count = 0u64;
        let mut last = None;
        sample_bernoulli_indices(total, prob, &mut rng, |idx| {
            if let Some(prev) = last {
                assert!(idx > prev, "indices must be strictly increasing");
            }
            assert!(idx < total);
            last = Some(idx);
            count += 1;
        });
        let expected = total as f64 * prob;
        assert!(
            (count as f64 - expected).abs() < 0.1 * expected,
            "count {count} vs expected {expected}"
        );
    }

    #[test]
    fn skip_sampling_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut count = 0;
        sample_bernoulli_indices(100, 0.0, &mut rng, |_| count += 1);
        assert_eq!(count, 0);
        sample_bernoulli_indices(100, 1.0, &mut rng, |_| count += 1);
        assert_eq!(count, 100);
        sample_bernoulli_indices(0, 0.5, &mut rng, |_| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    fn snapshot_edge_set_equals_alive_state_exactly() {
        // The alive `BTreeSet` (private state) is the independent reference:
        // the CSR snapshot must list exactly those pairs, in index order.
        let n = 120usize;
        let params = EdgeMegParams::with_stationary(n, 0.05, 0.4);
        let mut meg = SparseEdgeMeg::stationary(params, 23);
        for step in 0..10 {
            let expected: Vec<(Node, Node)> = meg
                .alive
                .iter()
                .map(|&idx| {
                    let (a, b) = pair_from_index(n as u64, idx);
                    (a as Node, b as Node)
                })
                .collect();
            let snap = meg.advance();
            assert_eq!(snap.edges(), expected, "step {step}");
        }
    }

    #[test]
    fn transition_stepping_matches_g0_and_tracks_state_exactly() {
        let n = 150usize;
        let params = EdgeMegParams::with_stationary(n, 0.04, 0.3);
        let mut per_pair = SparseEdgeMeg::stationary(params, 71);
        let mut fast = SparseEdgeMeg::with_stepping(
            params,
            InitialDistribution::Stationary,
            Stepping::Transitions,
            71,
        );
        // Identical initial skip-sampling draws → identical G_0.
        assert_eq!(per_pair.advance().edges(), fast.advance().edges());
        // Later snapshots must mirror the flat alive array exactly (the
        // chain steps at the start of `advance`, so state and snapshot
        // coincide afterwards).
        for step in 0..60 {
            fast.advance();
            let mut expected: Vec<(Node, Node)> = fast
                .alive_vec
                .iter()
                .map(|&k| {
                    let (a, b) = pair_from_index(n as u64, k as u64);
                    (a as Node, b as Node)
                })
                .collect();
            expected.sort_unstable();
            let mut got = fast.snapshot.edges();
            got.sort_unstable();
            assert_eq!(got, expected, "step {step}");
            assert_eq!(
                fast.snapshot.num_edges(),
                fast.alive_vec.len(),
                "step {step}"
            );
        }
    }

    #[test]
    fn stationary_start_matches_expected_edge_count() {
        let params = EdgeMegParams::with_stationary(500, 0.02, 0.5);
        let meg = SparseEdgeMeg::stationary(params, 2);
        let expected = params.expected_stationary_edges();
        let got = meg.alive_edges() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "alive {got} vs expected {expected}"
        );
    }

    #[test]
    fn initial_distributions() {
        let params = EdgeMegParams::new(30, 0.1, 0.1);
        assert_eq!(
            SparseEdgeMeg::new(params, InitialDistribution::Empty, 0).alive_edges(),
            0
        );
        assert_eq!(
            SparseEdgeMeg::new(params, InitialDistribution::Full, 0).alive_edges(),
            30 * 29 / 2
        );
    }

    #[test]
    fn edge_count_stays_near_stationary_level() {
        let params = EdgeMegParams::with_stationary(400, 0.03, 0.25);
        let mut meg = SparseEdgeMeg::stationary(params, 5);
        let expected = params.expected_stationary_edges();
        for _ in 0..30 {
            let edges = meg.advance().num_edges() as f64;
            assert!(
                (edges - expected).abs() < 0.3 * expected,
                "edges {edges} drifted from stationary level {expected}"
            );
        }
    }

    #[test]
    fn sparse_and_dense_agree_statistically() {
        // Same parameters, different engines: average snapshot degree over a
        // window must agree within a few percent.
        let params = EdgeMegParams::with_stationary(250, 0.04, 0.3);
        let mut sparse = SparseEdgeMeg::stationary(params, 21);
        let mut dense = DenseEdgeMeg::stationary(params, 22);
        let window = 20;
        let mut sparse_mean = 0.0;
        let mut dense_mean = 0.0;
        for _ in 0..window {
            sparse_mean += degree::degree_stats(sparse.advance()).unwrap().mean;
            dense_mean += degree::degree_stats(dense.advance()).unwrap().mean;
        }
        sparse_mean /= window as f64;
        dense_mean /= window as f64;
        let expected = 249.0 * 0.04;
        assert!(
            (sparse_mean - expected).abs() < 1.5,
            "sparse mean {sparse_mean}"
        );
        assert!(
            (dense_mean - expected).abs() < 1.5,
            "dense mean {dense_mean}"
        );
        assert!((sparse_mean - dense_mean).abs() < 2.0);
    }

    #[test]
    fn flooding_completes_in_connected_regime() {
        // n = 2000, p̂ = 3 log n / n ≈ 0.0114 — sparse but connected.
        let n = 2_000usize;
        let phat = 3.0 * (n as f64).ln() / n as f64;
        let params = EdgeMegParams::with_stationary(n, phat, 0.5);
        let mut meg = SparseEdgeMeg::stationary(params, 33);
        let result = flood(&mut meg, 0, 10_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
        let t = result.flooding_time().unwrap();
        assert!((2..=30).contains(&t), "flooding time {t}");
    }

    #[test]
    fn empty_start_takes_much_longer_than_stationary_in_sparse_regime() {
        // The "exponential gap" of Section 1 in miniature: with a tiny birth
        // rate, a stationary start floods quickly while an empty start must
        // first wait for edges to be born at all.
        let n = 300usize;
        let phat = 6.0 * (n as f64).ln() / n as f64; // ≈ 0.114
        let q = 0.002; // slow chain: edges are born very rarely (p ≈ 2.6e-4)
        let params = EdgeMegParams::with_stationary(n, phat, q);
        let mut stationary = SparseEdgeMeg::stationary(params, 44);
        let stat_time = flood(&mut stationary, 0, 100_000)
            .flooding_time()
            .expect("stationary flooding completes");
        let mut empty = SparseEdgeMeg::new(params, InitialDistribution::Empty, 45);
        let empty_time = flood(&mut empty, 0, 100_000)
            .flooding_time()
            .expect("worst-case flooding completes eventually");
        assert!(
            empty_time > 4 * stat_time,
            "empty start {empty_time} should be much slower than stationary {stat_time}"
        );
    }
}
