//! Initial-distribution helpers and stationary snapshot sampling.
//!
//! The stationary distribution of `M(n, p, q)` is the Erdős–Rényi law
//! `G(n, p̂)`; sampling one snapshot without building the whole evolving graph
//! is what the expansion experiments (Theorem 4.1 / Lemma 4.2) need. The
//! worst-case comparisons of Section 1 additionally start the chain from the
//! empty (or full) graph.

use crate::model::EdgeMegParams;
use crate::{DenseEdgeMeg, SparseEdgeMeg};
use meg_core::evolving::{InitialDistribution, Stepping};
use meg_graph::{generators, AdjacencyList};
use rand::Rng;

/// Samples one snapshot from the stationary distribution `G(n, p̂)`.
pub fn sample_stationary_snapshot<R: Rng>(params: EdgeMegParams, rng: &mut R) -> AdjacencyList {
    generators::erdos_renyi(params.n, params.stationary_edge_probability(), rng)
}

/// Either engine behind one type, chosen by density (see
/// [`EdgeMegParams::prefers_sparse_engine`]).
#[derive(Clone, Debug)]
pub enum AutoEdgeMeg {
    /// Dense per-pair engine.
    Dense(DenseEdgeMeg),
    /// Sparse alive-set engine.
    Sparse(SparseEdgeMeg),
}

impl AutoEdgeMeg {
    /// Builds the engine best suited to the configuration's density.
    pub fn new(params: EdgeMegParams, init: InitialDistribution, seed: u64) -> Self {
        Self::with_stepping(params, init, Stepping::PerPair, seed)
    }

    /// Builds the density-selected engine with an explicit stepping mode.
    pub fn with_stepping(
        params: EdgeMegParams,
        init: InitialDistribution,
        stepping: Stepping,
        seed: u64,
    ) -> Self {
        if params.prefers_sparse_engine() {
            AutoEdgeMeg::Sparse(SparseEdgeMeg::with_stepping(params, init, stepping, seed))
        } else {
            AutoEdgeMeg::Dense(DenseEdgeMeg::with_stepping(params, init, stepping, seed))
        }
    }

    /// Stationary-start constructor.
    pub fn stationary(params: EdgeMegParams, seed: u64) -> Self {
        Self::new(params, InitialDistribution::Stationary, seed)
    }

    /// Returns `true` if the sparse engine was selected.
    pub fn is_sparse(&self) -> bool {
        matches!(self, AutoEdgeMeg::Sparse(_))
    }
}

impl meg_core::evolving::EvolvingGraph for AutoEdgeMeg {
    fn num_nodes(&self) -> usize {
        match self {
            AutoEdgeMeg::Dense(m) => m.num_nodes(),
            AutoEdgeMeg::Sparse(m) => m.num_nodes(),
        }
    }

    fn advance(&mut self) -> &meg_graph::SnapshotBuf {
        match self {
            AutoEdgeMeg::Dense(m) => m.advance(),
            AutoEdgeMeg::Sparse(m) => m.advance(),
        }
    }

    fn time(&self) -> u64 {
        match self {
            AutoEdgeMeg::Dense(m) => m.time(),
            AutoEdgeMeg::Sparse(m) => m.time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_core::evolving::EvolvingGraph;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::Graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn stationary_snapshot_has_expected_density() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let params = EdgeMegParams::with_stationary(400, 0.03, 0.5);
        let snap = sample_stationary_snapshot(params, &mut rng);
        let expected = params.expected_stationary_edges();
        let got = snap.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "edges {got} vs {expected}"
        );
    }

    #[test]
    fn auto_engine_picks_by_density() {
        let sparse = AutoEdgeMeg::stationary(EdgeMegParams::with_stationary(200, 0.05, 0.5), 1);
        assert!(sparse.is_sparse());
        let dense = AutoEdgeMeg::stationary(EdgeMegParams::with_stationary(200, 0.4, 0.5), 1);
        assert!(!dense.is_sparse());
    }

    #[test]
    fn auto_engine_floods_like_any_other() {
        let params = EdgeMegParams::with_stationary(300, 0.05, 0.5);
        let mut meg = AutoEdgeMeg::stationary(params, 3);
        assert_eq!(meg.num_nodes(), 300);
        let r = flood(&mut meg, 0, 1_000);
        assert_eq!(r.outcome, FloodingOutcome::Completed);
        assert!(meg.time() >= r.rounds);
    }
}
