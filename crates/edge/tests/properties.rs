//! Property-based tests for the edge-MEG engines: agreement between the dense
//! and sparse implementations, stationarity preservation, and parameter
//! plumbing.

use meg_core::evolving::{EvolvingGraph, InitialDistribution};
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_graph::Graph;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn snapshot_edge_counts_are_within_pair_budget(
        n in 2usize..60,
        p in 0.0f64..1.0,
        q in 0.0f64..1.0,
        seed in 0u64..200,
        steps in 1usize..10,
    ) {
        let params = EdgeMegParams::new(n, p, q);
        let max_pairs = params.num_pairs() as usize;
        let mut dense = DenseEdgeMeg::stationary(params, seed);
        let mut sparse = SparseEdgeMeg::stationary(params, seed.wrapping_add(1));
        for _ in 0..steps {
            let d = dense.advance().num_edges();
            let s = sparse.advance().num_edges();
            prop_assert!(d <= max_pairs);
            prop_assert!(s <= max_pairs);
        }
        prop_assert_eq!(dense.time(), steps as u64);
        prop_assert_eq!(sparse.time(), steps as u64);
    }

    #[test]
    fn deterministic_limits_behave_identically_in_both_engines(
        n in 2usize..40,
        seed in 0u64..100,
    ) {
        // p = 1, q = 0: every edge is born immediately and never dies → after
        // the first step both engines must present the complete graph forever.
        let params = EdgeMegParams::new(n, 1.0, 0.0);
        let complete_edges = params.num_pairs() as usize;
        let mut dense = DenseEdgeMeg::new(params, InitialDistribution::Empty, seed);
        let mut sparse = SparseEdgeMeg::new(params, InitialDistribution::Empty, seed);
        prop_assert_eq!(dense.advance().num_edges(), 0);
        prop_assert_eq!(sparse.advance().num_edges(), 0);
        for _ in 0..3 {
            prop_assert_eq!(dense.advance().num_edges(), complete_edges);
            prop_assert_eq!(sparse.advance().num_edges(), complete_edges);
        }

        // p = 0, q = 1 from a full start: everything dies after one step.
        let params = EdgeMegParams::new(n, 0.0, 1.0);
        let mut dense = DenseEdgeMeg::new(params, InitialDistribution::Full, seed);
        let mut sparse = SparseEdgeMeg::new(params, InitialDistribution::Full, seed);
        prop_assert_eq!(dense.advance().num_edges(), complete_edges);
        prop_assert_eq!(sparse.advance().num_edges(), complete_edges);
        for _ in 0..3 {
            prop_assert_eq!(dense.advance().num_edges(), 0);
            prop_assert_eq!(sparse.advance().num_edges(), 0);
        }
    }

    #[test]
    fn with_stationary_round_trips_phat(n in 2usize..10_000, p_hat in 0.001f64..0.5, q in 0.01f64..1.0) {
        // Skip combinations whose implied birth rate would exceed 1.
        if q * p_hat / (1.0 - p_hat) <= 1.0 {
            let params = EdgeMegParams::with_stationary(n, p_hat, q);
            prop_assert!((params.stationary_edge_probability() - p_hat).abs() < 1e-9);
            let bounds = params.bounds();
            prop_assert!((bounds.p_hat - p_hat).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_start_keeps_edge_counts_in_a_concentration_band(
        n in 100usize..300,
        seed in 0u64..50,
    ) {
        // p̂ fixed at 0.05: the stationary edge count is Binomial(C(n,2), p̂),
        // which at these sizes stays within ±40% of its mean with overwhelming
        // probability, both at time 0 and after a few steps.
        let params = EdgeMegParams::with_stationary(n, 0.05, 0.3);
        let expected = params.expected_stationary_edges();
        let mut meg = SparseEdgeMeg::stationary(params, seed);
        for _ in 0..5 {
            let edges = meg.advance().num_edges() as f64;
            prop_assert!(
                (edges - expected).abs() < 0.4 * expected,
                "edges {} vs expected {}",
                edges,
                expected
            );
        }
    }

    #[test]
    fn time_independent_snapshots_are_uncorrelated_in_expectation(
        n in 50usize..150,
        p in 0.05f64..0.3,
        seed in 0u64..50,
    ) {
        // q = 1 − p makes consecutive snapshots independent G(n, p); their
        // edge counts should each be near the mean (no drift, no stickiness).
        let params = EdgeMegParams::time_independent(n, p);
        let expected = params.expected_stationary_edges();
        let mut meg = DenseEdgeMeg::stationary(params, seed);
        for _ in 0..4 {
            let edges = meg.advance().num_edges() as f64;
            prop_assert!((edges - expected).abs() < 0.5 * expected);
        }
    }
}
