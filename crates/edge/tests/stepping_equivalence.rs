//! Statistical equivalence of the two edge-MEG stepping modes.
//!
//! `Stepping::Transitions` (geometric skip-sampled flip calendar + snapshot
//! deltas) must realise *exactly* the same stochastic process as
//! `Stepping::PerPair` (one Bernoulli per pair per round), even though the
//! two paths consume randomness differently and therefore produce different
//! trajectories at equal seeds. This suite gates that claim three ways:
//!
//! 1. against **closed-form laws** — holding times in each chain state are
//!    geometric (`Geom(q)` alive, `Geom(p)` dead), the per-round flip count
//!    is marginally `Binomial(C(n,2), 2pq/(p+q))`, and the mean edge density
//!    is `p̂ = p/(p+q)` (chi-square / CLT bounds);
//! 2. against a **per-pair reference run** — per-edge empirical densities,
//!    per-round flip counts, and holding-time histograms from independent
//!    seeds must agree across modes (two-sample KS / chi-square);
//! 3. on **both engines** — the dense bitset engine carries the full
//!    battery, the sparse engine a density cross-check.
//!
//! Every test uses fixed seeds and the deterministic critical values of
//! `meg_stats::gof`, so a pass is reproducible, not probabilistic.

use meg_core::evolving::{EvolvingGraph, InitialDistribution, Stepping};
use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
use meg_graph::Graph;
use meg_stats::gof::{chi_square_gof, ks_two_sample, Alpha};

/// Rounds per collection run (the ISSUE floor is 10k).
const ROUNDS: usize = 12_000;
/// Holding-time histogram length; the last bin pools the tail.
const MAX_HOLD: usize = 40;

/// Everything one run of an edge-MEG yields for the equivalence checks.
struct RunStats {
    /// Empirical presence frequency of each pair over all rounds.
    densities: Vec<f64>,
    /// Flip count of each round (length `ROUNDS - 1`).
    flips_per_round: Vec<f64>,
    /// Completed alive-run lengths, `hold_alive[k-1]` = count of length-`k`
    /// runs (last bin pools `>= MAX_HOLD`).
    hold_alive: Vec<u64>,
    /// Completed dead-run lengths, same layout.
    hold_dead: Vec<u64>,
}

/// Drives `rounds` snapshots of a dense edge-MEG and tallies per-pair
/// presence, flips, and completed holding times (initial and final runs are
/// censored and dropped, so recorded runs are exactly geometric).
fn collect_dense(params: EdgeMegParams, stepping: Stepping, seed: u64, rounds: usize) -> RunStats {
    let mut meg =
        DenseEdgeMeg::with_stepping(params, InitialDistribution::Stationary, stepping, seed);
    collect(&mut meg, params.n, rounds)
}

fn collect_sparse(params: EdgeMegParams, stepping: Stepping, seed: u64, rounds: usize) -> RunStats {
    let mut meg =
        SparseEdgeMeg::with_stepping(params, InitialDistribution::Stationary, stepping, seed);
    collect(&mut meg, params.n, rounds)
}

fn collect<M: EvolvingGraph>(meg: &mut M, n: usize, rounds: usize) -> RunStats {
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
        .collect();
    let np = pairs.len();
    let mut prev = vec![false; np];
    let mut run = vec![0u32; np];
    let mut started = vec![false; np];
    let mut present = vec![0u64; np];
    let mut hold_alive = vec![0u64; MAX_HOLD];
    let mut hold_dead = vec![0u64; MAX_HOLD];
    let mut flips_per_round = Vec::with_capacity(rounds - 1);

    let g = meg.advance();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        prev[i] = g.has_edge(u, v);
        present[i] += prev[i] as u64;
        run[i] = 1;
    }
    for _ in 1..rounds {
        let g = meg.advance();
        let mut flips = 0u32;
        for (i, &(u, v)) in pairs.iter().enumerate() {
            let cur = g.has_edge(u, v);
            present[i] += cur as u64;
            if cur != prev[i] {
                flips += 1;
                if started[i] {
                    let hist = if prev[i] {
                        &mut hold_alive
                    } else {
                        &mut hold_dead
                    };
                    hist[(run[i] as usize - 1).min(MAX_HOLD - 1)] += 1;
                }
                started[i] = true;
                run[i] = 1;
                prev[i] = cur;
            } else {
                run[i] += 1;
            }
        }
        flips_per_round.push(f64::from(flips));
    }
    RunStats {
        densities: present.iter().map(|&c| c as f64 / rounds as f64).collect(),
        flips_per_round,
        hold_alive,
        hold_dead,
    }
}

/// Expected counts of a `Geom(rate)` holding-time histogram with `total`
/// recorded runs: `total · rate(1−rate)^{k−1}`, tail mass in the last bin.
fn geometric_expected(total: u64, rate: f64) -> Vec<f64> {
    let t = total as f64;
    let mut expected: Vec<f64> = (0..MAX_HOLD - 1)
        .map(|k| t * rate * (1.0 - rate).powi(k as i32))
        .collect();
    expected.push(t * (1.0 - rate).powi(MAX_HOLD as i32 - 1));
    expected
}

/// Test parameters: n = 12 (66 pairs), p̂ = 0.4, q = 0.5 ⇒ p = 1/3. The
/// chain mixes fast (|1 − p − q| = 1/6), so round-to-round correlation is
/// negligible against the chi-square thresholds.
fn battery_params() -> EdgeMegParams {
    EdgeMegParams::with_stationary(12, 0.4, 0.5)
}

const SEED_A: u64 = 0x5045_5236_0001;
const SEED_B: u64 = 0x5045_5236_0002;

#[test]
fn transitions_holding_times_match_the_geometric_laws() {
    let params = battery_params();
    let s = collect_dense(params, Stepping::Transitions, SEED_A, ROUNDS);
    // Alive runs terminate with the death probability q.
    let alive = chi_square_gof(
        &s.hold_alive,
        &geometric_expected(s.hold_alive.iter().sum(), params.q),
        5.0,
        Alpha::P001,
    )
    .expect("enough alive runs to bin");
    assert!(alive.pass, "alive holding times reject Geom(q): {alive:?}");
    // Dead runs terminate with the birth probability p.
    let dead = chi_square_gof(
        &s.hold_dead,
        &geometric_expected(s.hold_dead.iter().sum(), params.p),
        5.0,
        Alpha::P001,
    )
    .expect("enough dead runs to bin");
    assert!(dead.pass, "dead holding times reject Geom(p): {dead:?}");
}

#[test]
fn transitions_flip_counts_match_the_binomial_law() {
    let params = battery_params();
    let s = collect_dense(params, Stepping::Transitions, SEED_A, ROUNDS);
    let np = params.num_pairs() as usize;
    // Marginally, each round flips Binomial(C(n,2), 2pq/(p+q)) pairs: every
    // pair sits in its stationary state and flips independently.
    let rate = 2.0 * params.p * params.q / (params.p + params.q);
    let mut pmf = vec![0.0f64; np + 1];
    pmf[0] = (1.0 - rate).powi(np as i32);
    for k in 0..np {
        pmf[k + 1] = pmf[k] * (np - k) as f64 / (k + 1) as f64 * rate / (1.0 - rate);
    }
    let mut observed = vec![0u64; np + 1];
    for &f in &s.flips_per_round {
        observed[f as usize] += 1;
    }
    let total = s.flips_per_round.len() as f64;
    let expected: Vec<f64> = pmf.iter().map(|&p| p * total).collect();
    let t = chi_square_gof(&observed, &expected, 5.0, Alpha::P001).unwrap();
    assert!(t.pass, "flip counts reject the binomial law: {t:?}");
}

#[test]
fn transitions_aggregates_match_closed_forms() {
    let params = battery_params();
    let s = collect_dense(params, Stepping::Transitions, SEED_A, ROUNDS);
    let mean_density = s.densities.iter().sum::<f64>() / s.densities.len() as f64;
    let p_hat = params.stationary_edge_probability();
    assert!(
        (mean_density - p_hat).abs() < 0.01,
        "mean density {mean_density} vs p̂ {p_hat}"
    );
    let mean_flips = s.flips_per_round.iter().sum::<f64>() / s.flips_per_round.len() as f64;
    let want = params.expected_stationary_flips();
    assert!(
        (mean_flips - want).abs() / want < 0.05,
        "mean flips/round {mean_flips} vs closed form {want}"
    );
}

#[test]
fn transitions_matches_a_per_pair_reference_run() {
    let params = battery_params();
    let fast = collect_dense(params, Stepping::Transitions, SEED_A, ROUNDS);
    let reference = collect_dense(params, Stepping::PerPair, SEED_B, ROUNDS);

    // Per-edge stationary densities are draws from the same law.
    let densities = ks_two_sample(&fast.densities, &reference.densities, Alpha::P001).unwrap();
    assert!(densities.pass, "per-edge densities diverge: {densities:?}");

    // Per-round flip counts are draws from the same law.
    let flips = ks_two_sample(
        &fast.flips_per_round,
        &reference.flips_per_round,
        Alpha::P001,
    )
    .unwrap();
    assert!(flips.pass, "flip-rate laws diverge: {flips:?}");

    // Holding-time histograms agree (reference histogram, rescaled to the
    // fast run's total, serves as the expectation).
    for (obs, refh, label) in [
        (&fast.hold_alive, &reference.hold_alive, "alive"),
        (&fast.hold_dead, &reference.hold_dead, "dead"),
    ] {
        let scale = obs.iter().sum::<u64>() as f64 / refh.iter().sum::<u64>() as f64;
        let expected: Vec<f64> = refh.iter().map(|&c| c as f64 * scale).collect();
        let t = chi_square_gof(obs, &expected, 5.0, Alpha::P001).unwrap();
        assert!(t.pass, "{label} holding times diverge across modes: {t:?}");
    }
}

#[test]
fn sparse_engine_transitions_matches_its_reference() {
    // The sparse engine in its home regime: n = 40 (780 pairs), p̂ = 0.08.
    let params = EdgeMegParams::with_stationary(40, 0.08, 0.5);
    let fast = collect_sparse(params, Stepping::Transitions, SEED_A, 4_000);
    let reference = collect_sparse(params, Stepping::PerPair, SEED_B, 4_000);
    let densities = ks_two_sample(&fast.densities, &reference.densities, Alpha::P001).unwrap();
    assert!(
        densities.pass,
        "sparse per-edge densities diverge: {densities:?}"
    );
    let flips = ks_two_sample(
        &fast.flips_per_round,
        &reference.flips_per_round,
        Alpha::P001,
    )
    .unwrap();
    assert!(flips.pass, "sparse flip-rate laws diverge: {flips:?}");
    let mean_density = fast.densities.iter().sum::<f64>() / fast.densities.len() as f64;
    assert!(
        (mean_density - 0.08).abs() < 0.01,
        "sparse mean density {mean_density} vs p̂ 0.08"
    );
}
