//! Differential test of the word-packed dense engine against a byte-per-pair
//! reference.
//!
//! The dense engine packs its per-pair chain states into `PairBits` and steps
//! them 64 at a time through `meg_markov::WordStepper`, with the contract
//! that the RNG schedule and all observable behaviour are **bit-identical**
//! to the historical `Vec<bool>` implementation (one `gen_bool` per pair in
//! ascending index order). This suite rebuilds that historical engine from
//! first principles — a `Vec<bool>` state vector driven by scalar `gen_bool`
//! / skip-sampling calls — and property-checks, over arbitrary
//! `(n, p, q, seed, rounds, stepping)`:
//!
//! * every returned snapshot's edge set,
//! * the `meg-obs` flip/draw counters of every round,
//! * and the engine RNG cursor after every round (via
//!   [`DenseEdgeMeg::rng_cursor_probe`])
//!
//! agree exactly between the packed engine and the reference.
//!
//! The two stepping modes cannot run as separate `#[test]`s here: the
//! counter comparison installs the process-global `meg-obs` recorder, so
//! both modes are exercised inside the single property below.

use meg_core::evolving::{EvolvingGraph, InitialDistribution, Stepping};
use meg_edge::{DenseEdgeMeg, EdgeMegParams};
use meg_graph::generators::pair_from_index;
use meg_graph::Node;
use meg_obs as obs;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Verbatim copy of `meg_edge::sparse::sample_bernoulli_indices` (which is
/// deliberately `pub(crate)` — the skip-sampler is an implementation detail,
/// not API). The reference engine must consume the RNG through the *same*
/// draw sequence as the real transitions path, so the duplicate is the
/// point: if the crate's sampler ever changes schedule, this copy stays put
/// and the differential property fails loudly.
fn sample_bernoulli_indices<R: Rng>(
    total: u64,
    prob: f64,
    rng: &mut R,
    mut visit: impl FnMut(u64),
) -> u64 {
    if prob <= 0.0 || total == 0 {
        return 0;
    }
    if prob >= 1.0 {
        for idx in 0..total {
            visit(idx);
        }
        return 0;
    }
    let log_q = (1.0 - prob).ln();
    let mut idx: u64 = 0;
    let mut draws: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        draws += 1;
        let skip = (u.ln() / log_q).floor();
        if !skip.is_finite() || skip >= (total as f64) {
            break;
        }
        idx = match idx.checked_add(skip as u64) {
            Some(v) => v,
            None => break,
        };
        if idx >= total {
            break;
        }
        visit(idx);
        idx += 1;
        if idx >= total {
            break;
        }
    }
    draws
}

/// What one reference round observed: the snapshot the real engine must
/// return this round, plus the counter deltas it must record.
struct RefRound {
    edges: Vec<(Node, Node)>,
    births: u64,
    deaths: u64,
    rng_draws: u64,
}

/// The historical dense engine: one `bool` per pair, scalar RNG schedule.
struct ReferenceDense {
    n: usize,
    p: f64,
    q: f64,
    alive: Vec<bool>,
    /// Flat alive-index array of the transitions path (same maintenance
    /// discipline as the real engine: deaths swap-remove, births push).
    alive_idx: Vec<u32>,
    rng: StdRng,
    stepping: Stepping,
    /// Transitions stepping builds the snapshot on the first advance and
    /// steps the chain only on later ones.
    synced: bool,
}

impl ReferenceDense {
    fn stationary(n: usize, p: f64, q: f64, stepping: Stepping, seed: u64) -> Self {
        let params = EdgeMegParams::new(n, p, q);
        let phat = params.chain().stationary_edge_probability();
        let mut rng = StdRng::seed_from_u64(seed);
        let num_pairs = params.num_pairs() as usize;
        let alive: Vec<bool> = (0..num_pairs).map(|_| rng.gen_bool(phat)).collect();
        let alive_idx = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(k, _)| k as u32)
            .collect();
        ReferenceDense {
            n,
            p,
            q,
            alive,
            alive_idx,
            rng,
            stepping,
            synced: false,
        }
    }

    fn edges(&self) -> Vec<(Node, Node)> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(k, _)| {
                let (a, b) = pair_from_index(self.n as u64, k as u64);
                (a as Node, b as Node)
            })
            .collect()
    }

    /// One Bernoulli per pair in ascending order — the schedule the packed
    /// word stepper must reproduce exactly.
    fn step_per_pair(&mut self) -> (u64, u64) {
        let (mut born, mut died) = (0u64, 0u64);
        for k in 0..self.alive.len() {
            let old = self.alive[k];
            let new = if old {
                !self.rng.gen_bool(self.q)
            } else {
                self.rng.gen_bool(self.p)
            };
            born += (!old & new) as u64;
            died += (old & !new) as u64;
            self.alive[k] = new;
        }
        (born, died)
    }

    /// Births skip-sampled over the triangle, then deaths over the alive
    /// array; applied deaths-first in decreasing position order — the exact
    /// discipline (and RNG order) of `DenseEdgeMeg::step_transitions`.
    fn step_transitions(&mut self) -> (u64, u64, u64) {
        let total = self.alive.len() as u64;
        let mut birth_idx: Vec<u32> = Vec::new();
        let mut death_pos: Vec<u32> = Vec::new();
        let alive = &self.alive;
        let mut draws = sample_bernoulli_indices(total, self.p, &mut self.rng, |k| {
            if !alive[k as usize] {
                birth_idx.push(k as u32);
            }
        });
        draws +=
            sample_bernoulli_indices(self.alive_idx.len() as u64, self.q, &mut self.rng, |pos| {
                death_pos.push(pos as u32);
            });
        for i in (0..death_pos.len()).rev() {
            let pos = death_pos[i] as usize;
            let k = self.alive_idx.swap_remove(pos);
            self.alive[k as usize] = false;
        }
        for &k in &birth_idx {
            self.alive[k as usize] = true;
            self.alive_idx.push(k);
        }
        (birth_idx.len() as u64, death_pos.len() as u64, draws)
    }

    fn advance(&mut self) -> RefRound {
        match self.stepping {
            Stepping::PerPair => {
                // Snapshot first (G_t), then the chain moves to t+1.
                let edges = self.edges();
                let (births, deaths) = self.step_per_pair();
                RefRound {
                    edges,
                    births,
                    deaths,
                    rng_draws: 0,
                }
            }
            Stepping::Transitions => {
                if !self.synced {
                    self.synced = true;
                    RefRound {
                        edges: self.edges(),
                        births: 0,
                        deaths: 0,
                        rng_draws: 0,
                    }
                } else {
                    let (births, deaths, rng_draws) = self.step_transitions();
                    RefRound {
                        edges: self.edges(),
                        births,
                        deaths,
                        rng_draws,
                    }
                }
            }
        }
    }

    fn rng_cursor_probe(&self) -> u64 {
        self.rng.clone().next_u64()
    }

    /// Alive pairs of the *current* chain state (post-step after `advance`;
    /// one step ahead of the snapshot `advance` returned under per-pair
    /// stepping, in sync with it under transitions stepping — the same
    /// semantics as [`DenseEdgeMeg::alive_edges`]).
    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

fn counter(deltas: &[(&'static str, u64)], name: &str) -> u64 {
    deltas
        .iter()
        .find(|(k, _)| *k == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

/// Maps a selector + raw uniform to a rate that visits the extremes often:
/// `0` (frozen), `1` (certain flip) and `0.5` exercise different branches of
/// both the word stepper and the skip sampler than generic rates do.
fn rate(selector: u32, raw: f64) -> f64 {
    match selector {
        0 | 1 => 0.0,
        2 | 3 => 1.0,
        4 => 0.5,
        _ => raw,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_engine_equals_byte_per_pair_reference(
        n in 2usize..48,
        p_sel in 0u32..10,
        p_raw in 0.0f64..1.0,
        q_sel in 0u32..10,
        q_raw in 0.0f64..1.0,
        seed in 0u64..1_000_000_000,
        rounds in 0usize..8,
        transitions in proptest::bool::ANY,
    ) {
        let p = rate(p_sel, p_raw);
        let q = rate(q_sel, q_raw);
        let stepping = if transitions {
            Stepping::Transitions
        } else {
            Stepping::PerPair
        };
        let params = EdgeMegParams::new(n, p, q);
        let mut real = DenseEdgeMeg::with_stepping(
            params,
            InitialDistribution::Stationary,
            stepping,
            seed,
        );
        let mut reference = ReferenceDense::stationary(n, p, q, stepping, seed);

        // The stationary draw itself must leave both RNGs at the same cursor.
        prop_assert_eq!(
            real.rng_cursor_probe(),
            reference.rng_cursor_probe(),
            "RNG cursor diverged during stationary init"
        );

        obs::install();
        for round in 0..rounds {
            let before = obs::snapshot();
            let mut got: Vec<(Node, Node)> = real.advance().edges();
            let after = obs::snapshot();
            let want = reference.advance();

            // Transitions maintains CSR rows in place, so within-row order
            // is maintenance order; the *set* must agree, so compare sorted.
            got.sort_unstable();
            prop_assert_eq!(&got, &want.edges, "round {}: edge sets differ", round);
            prop_assert_eq!(
                real.alive_edges(),
                reference.alive_count(),
                "round {}: alive count differs",
                round
            );

            let deltas = after.counter_deltas(&before);
            prop_assert_eq!(
                counter(&deltas, "edge_births"),
                want.births,
                "round {}: birth counters differ",
                round
            );
            prop_assert_eq!(
                counter(&deltas, "edge_deaths"),
                want.deaths,
                "round {}: death counters differ",
                round
            );
            prop_assert_eq!(
                counter(&deltas, "rng_draws"),
                want.rng_draws,
                "round {}: rng_draws counters differ",
                round
            );

            prop_assert_eq!(
                real.rng_cursor_probe(),
                reference.rng_cursor_probe(),
                "round {}: RNG cursor diverged",
                round
            );
        }
        obs::uninstall();
    }
}
