//! Density scaling (Observation 3.3).
//!
//! The paper states its results for density 1 (a `√n × √n` square) purely for
//! notational convenience: for a general node density `δ(n)` everything scales
//! once the connectivity threshold is read as `R ≥ c√(log n / δ)`. These
//! helpers perform that bookkeeping for experiments that sweep density.

/// Side of the support square holding `n` nodes at density `density`
/// (nodes per unit area).
pub fn side_for_density(n: usize, density: f64) -> f64 {
    assert!(n > 0, "n must be positive");
    assert!(density > 0.0, "density must be positive");
    (n as f64 / density).sqrt()
}

/// Node density obtained by placing `n` nodes in a square of side `side`.
pub fn density_for_side(n: usize, side: f64) -> f64 {
    assert!(side > 0.0, "side must be positive");
    n as f64 / (side * side)
}

/// Expected number of nodes within transmission range of a typical node
/// (`δ · πR²`) — the expected snapshot degree, ignoring border effects.
pub fn expected_degree(density: f64, radius: f64) -> f64 {
    density * std::f64::consts::PI * radius * radius
}

/// Rescales a density-1 configuration `(n, R, r)` to density `δ`, preserving
/// the expected degree and the ratio `r/R`: returns the scaled `(R, r)`.
pub fn rescale_radii(radius: f64, move_radius: f64, density: f64) -> (f64, f64) {
    assert!(density > 0.0, "density must be positive");
    let scale = 1.0 / density.sqrt();
    (radius * scale, move_radius * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_and_density_are_inverse() {
        let side = side_for_density(400, 4.0);
        assert_eq!(side, 10.0);
        assert_eq!(density_for_side(400, side), 4.0);
        assert_eq!(side_for_density(400, 1.0), 20.0);
    }

    #[test]
    fn expected_degree_scales_linearly_with_density() {
        let d1 = expected_degree(1.0, 5.0);
        let d4 = expected_degree(4.0, 5.0);
        assert!((d4 / d1 - 4.0).abs() < 1e-12);
        assert!((d1 - std::f64::consts::PI * 25.0).abs() < 1e-12);
    }

    #[test]
    fn rescaling_preserves_expected_degree() {
        let density = 4.0;
        let (r_scaled, move_scaled) = rescale_radii(6.0, 2.0, density);
        assert_eq!(r_scaled, 3.0);
        assert_eq!(move_scaled, 1.0);
        let before = expected_degree(1.0, 6.0);
        let after = expected_degree(density, r_scaled);
        assert!((before - after).abs() < 1e-9);
        // ratio r/R preserved
        assert!((move_scaled / r_scaled - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_density_rejected() {
        side_for_density(10, 0.0);
    }
}
