//! The geometric-MEG evolving graph.

use crate::radius_graph::{radius_graph_into, RadiusGraphWorkspace};
use meg_core::evolving::EvolvingGraph;
use meg_graph::SnapshotBuf;
use meg_mobility::grid_walk::{GridWalk, GridWalkParams};
use meg_mobility::{Mobility, Region};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parameters of the paper's canonical geometric-MEG
/// `G(n, r, R, ε)` (Section 3): density-1 square of side `√n`, grid-walk
/// mobility with move radius `r`, transmission radius `R`, grid resolution
/// `ε`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeometricMegParams {
    /// Number of nodes.
    pub n: usize,
    /// Move radius `r` (maximum node speed per step).
    pub move_radius: f64,
    /// Transmission radius `R`.
    pub transmission_radius: f64,
    /// Grid resolution `ε` (`0 < ε ≤ 1` and `ε < R` in the paper).
    pub resolution: f64,
}

impl GeometricMegParams {
    /// Canonical parameters with `ε = 1` and the paper's density-1 region.
    pub fn new(n: usize, move_radius: f64, transmission_radius: f64) -> Self {
        GeometricMegParams {
            n,
            move_radius,
            transmission_radius,
            resolution: 1.0,
        }
    }

    /// Side of the support square (`√n` at density 1).
    pub fn side(&self) -> f64 {
        (self.n as f64).sqrt()
    }
}

/// A geometric Markovian evolving graph: any mobility model plus a
/// transmission radius.
///
/// The snapshot returned by the `t`-th call to
/// [`advance`](EvolvingGraph::advance) is the radius graph of the node
/// positions `P_t`; positions then move to `P_{t+1}`. With a stationary
/// mobility initialisation this is exactly the *stationary geometric-MEG* of
/// the paper.
#[derive(Clone, Debug)]
pub struct GeometricMeg<M: Mobility> {
    mobility: M,
    radius: f64,
    rng: StdRng,
    /// Model-owned snapshot buffer, rebuilt in place every step.
    snapshot: SnapshotBuf,
    /// Reusable bucket-grid scratch for the radius-graph construction.
    workspace: RadiusGraphWorkspace,
    time: u64,
}

impl<M: Mobility> GeometricMeg<M> {
    /// Wraps a mobility model (whose positions should already be stationary —
    /// every model in `meg-mobility` initialises itself that way).
    pub fn new(mobility: M, transmission_radius: f64, seed: u64) -> Self {
        assert!(
            transmission_radius > 0.0,
            "transmission radius must be positive"
        );
        let n = mobility.num_nodes();
        GeometricMeg {
            mobility,
            radius: transmission_radius,
            rng: StdRng::seed_from_u64(seed),
            snapshot: SnapshotBuf::with_nodes(n),
            workspace: RadiusGraphWorkspace::default(),
            time: 0,
        }
    }

    /// The transmission radius `R`.
    pub fn transmission_radius(&self) -> f64 {
        self.radius
    }

    /// The region nodes move in.
    pub fn region(&self) -> Region {
        self.mobility.region()
    }

    /// Borrows the underlying mobility model.
    pub fn mobility(&self) -> &M {
        &self.mobility
    }

    /// Re-draws the node positions from the mobility model's stationary
    /// distribution and resets the clock (a fresh stationary run).
    pub fn reset_stationary(&mut self) {
        self.mobility.sample_stationary(&mut self.rng);
        self.time = 0;
    }

    /// Builds (and returns a reference to) the snapshot of the *current*
    /// positions without advancing the mobility process.
    pub fn current_snapshot(&mut self) -> &SnapshotBuf {
        radius_graph_into(
            self.mobility.positions(),
            self.radius,
            self.mobility.region(),
            &mut self.workspace,
            &mut self.snapshot,
        );
        &self.snapshot
    }
}

impl GeometricMeg<GridWalk> {
    /// The paper's canonical model `G(n, r, R, ε)` with stationary start.
    pub fn from_params(params: GeometricMegParams, seed: u64) -> Self {
        assert!(
            params.resolution < params.transmission_radius,
            "the paper requires ε < R"
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let walk = GridWalk::new(
            GridWalkParams {
                n: params.n,
                side: params.side(),
                move_radius: params.move_radius,
                resolution: params.resolution,
            },
            &mut rng,
        );
        GeometricMeg::new(walk, params.transmission_radius, seed)
    }
}

impl<M: Mobility> EvolvingGraph for GeometricMeg<M> {
    fn num_nodes(&self) -> usize {
        self.mobility.num_nodes()
    }

    fn advance(&mut self) -> &SnapshotBuf {
        let _span = meg_obs::span("advance");
        radius_graph_into(
            self.mobility.positions(),
            self.radius,
            self.mobility.region(),
            &mut self.workspace,
            &mut self.snapshot,
        );
        self.mobility.advance(&mut self.rng);
        self.time += 1;
        &self.snapshot
    }

    fn time(&self) -> u64 {
        self.time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_core::flooding::{flood, FloodingOutcome};
    use meg_graph::{connectivity, Graph};
    use meg_mobility::TorusWalkers;
    use rand::rngs::StdRng;

    #[test]
    fn params_and_accessors() {
        let p = GeometricMegParams::new(400, 1.0, 5.0);
        assert_eq!(p.side(), 20.0);
        let meg = GeometricMeg::from_params(p, 7);
        assert_eq!(meg.num_nodes(), 400);
        assert_eq!(meg.transmission_radius(), 5.0);
        assert_eq!(meg.time(), 0);
        assert!(!meg.region().is_torus());
    }

    #[test]
    fn snapshots_change_over_time_but_node_count_does_not() {
        let mut meg = GeometricMeg::from_params(GeometricMegParams::new(300, 2.0, 4.0), 3);
        let e0 = meg.advance().num_edges();
        let mut changed = false;
        for _ in 0..5 {
            let e = meg.advance().num_edges();
            if e != e0 {
                changed = true;
            }
            assert_eq!(meg.num_nodes(), 300);
        }
        assert!(changed, "edge set should fluctuate as nodes move");
        assert_eq!(meg.time(), 6);
    }

    #[test]
    fn above_threshold_snapshots_are_connected_and_flooding_completes() {
        // n = 400, side 20, R = 6 ≥ 2√(ln 400) ≈ 4.9.
        let params = GeometricMegParams::new(400, 1.0, 6.0);
        let mut meg = GeometricMeg::from_params(params, 11);
        let snap = meg.current_snapshot().clone();
        assert!(
            connectivity::is_connected(&snap),
            "stationary snapshot should be connected"
        );
        let result = flood(&mut meg, 0, 10_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
        // Flooding should take at least ~√n/(R+r) rounds and at most a few dozen.
        let t = result.flooding_time().unwrap();
        assert!(t >= 2, "flooding time {t} suspiciously small");
        assert!(t <= 60, "flooding time {t} suspiciously large");
    }

    #[test]
    fn zero_speed_mobility_reduces_to_static_graph() {
        // Move radius much smaller than the grid resolution freezes the walk
        // (the only point within distance r is the point itself).
        let params = GeometricMegParams {
            n: 200,
            move_radius: 0.4,
            transmission_radius: 5.0,
            resolution: 1.0,
        };
        let mut meg = GeometricMeg::from_params(params, 5);
        let a = meg.advance().clone();
        let b = meg.advance().clone();
        assert_eq!(a.num_edges(), b.num_edges());
        for u in 0..200u32 {
            let mut na = a.neighbors(u).to_vec();
            let mut nb = b.neighbors(u).to_vec();
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn works_with_torus_mobility_models() {
        let mut rng = StdRng::seed_from_u64(1);
        let walkers = TorusWalkers::new(300, (300f64).sqrt(), 1.5, 1.0, &mut rng);
        let mut meg = GeometricMeg::new(walkers, 5.0, 2);
        assert!(meg.region().is_torus());
        let result = flood(&mut meg, 5, 5_000);
        assert_eq!(result.outcome, FloodingOutcome::Completed);
    }

    #[test]
    fn reset_stationary_restarts_the_clock() {
        let mut meg = GeometricMeg::from_params(GeometricMegParams::new(100, 1.0, 5.0), 9);
        meg.advance();
        meg.advance();
        assert_eq!(meg.time(), 2);
        meg.reset_stationary();
        assert_eq!(meg.time(), 0);
    }

    #[test]
    #[should_panic]
    fn resolution_must_be_below_radius() {
        GeometricMeg::from_params(
            GeometricMegParams {
                n: 10,
                move_radius: 1.0,
                transmission_radius: 0.5,
                resolution: 1.0,
            },
            0,
        );
    }
}
