//! # meg-geometric
//!
//! Geometric Markovian evolving graphs (Section 3 of the paper): `n` mobile
//! radio stations move in a planar region according to a mobility model, and
//! at every time step two stations are connected iff they are within
//! transmission radius `R`.
//!
//! * [`GeometricMeg`] — the evolving graph itself,
//!   generic over any [`Mobility`](meg_mobility::Mobility) model (the paper's
//!   grid random walk, walkers on a torus, random waypoint, billiard);
//! * [`radius_graph`](radius_graph::radius_graph) — snapshot construction via
//!   a uniform cell grid (square or toroidal metric);
//! * [`cells`] — the `⌈√(5n)/R⌉ × ⌈√(5n)/R⌉` cell-partition machinery used in
//!   the proof of Theorem 3.2 (occupancy concentration, black/gray/white
//!   classification), exposed so the experiments can measure exactly the
//!   quantities the proof manipulates;
//! * [`density`] — the density scaling of Observation 3.3;
//! * [`snapshot`] — one-shot stationary snapshots for expansion and
//!   connectivity experiments that do not need the full dynamics.
//!
//! ## Example
//!
//! ```
//! use meg_core::flooding::flood;
//! use meg_geometric::{GeometricMeg, GeometricMegParams};
//!
//! // 300 stations, move radius r = R/2, transmission radius R above the
//! // connectivity threshold — the regime of Corollary 3.6.
//! let n = 300;
//! let radius = 2.0 * (n as f64).ln().sqrt();
//! let params = GeometricMegParams::new(n, radius / 2.0, radius);
//! let mut meg = GeometricMeg::from_params(params, 2009);
//! let result = flood(&mut meg, 0, 10_000);
//! let time = result.flooding_time().expect("connected regime floods");
//! assert!(time >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod density;
pub mod model;
pub mod radius_graph;
pub mod snapshot;

pub use model::{GeometricMeg, GeometricMegParams};
pub use radius_graph::radius_graph;
