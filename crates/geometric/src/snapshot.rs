//! One-shot stationary snapshots.
//!
//! Several experiments (connectivity sweeps, the Theorem 3.2 expansion
//! profile, Claim 1 occupancy concentration) only need independent samples of
//! the *stationary snapshot distribution*, not the time-correlated dynamics.
//! Sampling a snapshot directly — stationary positions plus one radius-graph
//! construction — is much cheaper than running the full evolving graph.

use crate::model::GeometricMegParams;
use crate::radius_graph::radius_graph;
use meg_graph::AdjacencyList;
use meg_mobility::grid_walk::{GridWalk, GridWalkParams};
use meg_mobility::space::Point;
use meg_mobility::Mobility;
use rand::Rng;

/// A stationary snapshot: node positions plus the induced radius graph.
#[derive(Clone, Debug)]
pub struct StationarySnapshot {
    /// Node positions drawn from the stationary distribution.
    pub positions: Vec<Point>,
    /// The induced radius graph.
    pub graph: AdjacencyList,
}

/// Samples one stationary snapshot of the paper's canonical model
/// `G(n, r, R, ε)`.
pub fn sample_paper_snapshot<R: Rng>(
    params: GeometricMegParams,
    rng: &mut R,
) -> StationarySnapshot {
    let walk = GridWalk::new(
        GridWalkParams {
            n: params.n,
            side: params.side(),
            move_radius: params.move_radius,
            resolution: params.resolution,
        },
        rng,
    );
    snapshot_of(&walk, params.transmission_radius)
}

/// Builds the snapshot induced by the *current* positions of any mobility
/// model.
pub fn snapshot_of<M: Mobility>(mobility: &M, transmission_radius: f64) -> StationarySnapshot {
    let positions = mobility.positions().to_vec();
    let graph = radius_graph(&positions, transmission_radius, mobility.region());
    StationarySnapshot { positions, graph }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_graph::{connectivity, metrics, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn snapshot_has_consistent_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let snap = sample_paper_snapshot(GeometricMegParams::new(300, 1.0, 5.0), &mut rng);
        assert_eq!(snap.positions.len(), 300);
        assert_eq!(snap.graph.num_nodes(), 300);
        // expected degree ≈ πR² ≈ 78 — just check it is in a broad plausible band
        let avg = metrics::average_degree(&snap.graph);
        assert!(avg > 30.0 && avg < 150.0, "average degree {avg}");
    }

    #[test]
    fn snapshots_above_threshold_are_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // R = 6 ≥ 2√(ln 400) ≈ 4.9
        for _ in 0..3 {
            let snap = sample_paper_snapshot(GeometricMegParams::new(400, 1.0, 6.0), &mut rng);
            assert!(connectivity::is_connected(&snap.graph));
        }
    }

    #[test]
    fn snapshots_well_below_threshold_are_disconnected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let snap = sample_paper_snapshot(GeometricMegParams::new(400, 1.0, 1.2), &mut rng);
        assert!(!connectivity::is_connected(&snap.graph));
    }

    #[test]
    fn independent_samples_differ() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let a = sample_paper_snapshot(GeometricMegParams::new(200, 1.0, 5.0), &mut rng);
        let b = sample_paper_snapshot(GeometricMegParams::new(200, 1.0, 5.0), &mut rng);
        assert_ne!(a.positions, b.positions);
    }
}
