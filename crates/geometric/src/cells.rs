//! The cell-partition machinery from the proof of Theorem 3.2.
//!
//! The proof tiles the `√n × √n` square into `m × m` congruent cells with
//! `m = ⌈√(5n)/R⌉`, so that the cell side lies in `[R/(√5+1), R/√5]` and any
//! two nodes in side-by-side adjacent cells are within distance `R`. Claim 1
//! shows every cell holds `Θ(R²)` nodes w.h.p.; Claims 2 and 3 turn that
//! occupancy into the two expansion regimes via a black/gray/white cell
//! classification. This module exposes those objects so experiments can
//! measure them directly.

use meg_graph::NodeSet;
use meg_mobility::space::Point;

/// The `m × m` cell partition of a square of side `side` used by Theorem 3.2.
#[derive(Clone, Debug)]
pub struct CellPartition {
    side: f64,
    cells_per_axis: usize,
    cell_side: f64,
}

/// Classification of a cell relative to a node subset `I` (proof of Claim 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellColor {
    /// Contains at least one node of `I`.
    Black,
    /// Contains at least one node, none of them in `I`.
    White,
    /// Contains no node at all (possible only below the occupancy threshold).
    EmptyCell,
}

impl CellPartition {
    /// Builds the partition for an `n`-node, density-1 instance with
    /// transmission radius `radius`: `m = ⌈√(5n)/R⌉` cells per axis.
    pub fn for_paper_instance(n: usize, radius: f64) -> Self {
        assert!(n > 0 && radius > 0.0);
        let side = (n as f64).sqrt();
        let m = ((5.0 * n as f64).sqrt() / radius).ceil().max(1.0) as usize;
        CellPartition {
            side,
            cells_per_axis: m,
            cell_side: side / m as f64,
        }
    }

    /// Builds a partition with an explicit number of cells per axis.
    pub fn with_cells(side: f64, cells_per_axis: usize) -> Self {
        assert!(side > 0.0 && cells_per_axis > 0);
        CellPartition {
            side,
            cells_per_axis,
            cell_side: side / cells_per_axis as f64,
        }
    }

    /// Side length of the partitioned square.
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Number of cells per axis `m`.
    pub fn cells_per_axis(&self) -> usize {
        self.cells_per_axis
    }

    /// Total number of cells `m²`.
    pub fn num_cells(&self) -> usize {
        self.cells_per_axis * self.cells_per_axis
    }

    /// Side length of each cell.
    pub fn cell_side(&self) -> f64 {
        self.cell_side
    }

    /// Cell index `(column, row)` of a position.
    pub fn cell_of(&self, p: Point) -> (usize, usize) {
        let cx = ((p.0 / self.cell_side) as usize).min(self.cells_per_axis - 1);
        let cy = ((p.1 / self.cell_side) as usize).min(self.cells_per_axis - 1);
        (cx, cy)
    }

    /// Linear index of a cell.
    pub fn linear_index(&self, cell: (usize, usize)) -> usize {
        cell.1 * self.cells_per_axis + cell.0
    }

    /// Occupancy counts `N_{i,j}` for all cells (linear indexing).
    pub fn occupancy(&self, positions: &[Point]) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_cells()];
        for &p in positions {
            counts[self.linear_index(self.cell_of(p))] += 1;
        }
        counts
    }

    /// Incrementally maintains an occupancy vector across a movement step:
    /// `counts` must be the occupancy of `old_positions`, and each node is
    /// re-binned from its old to its new cell. Only nodes that changed cell
    /// touch `counts`, so tracking occupancy alongside a delta-maintained
    /// snapshot costs one cell lookup per node instead of a fresh
    /// [`occupancy`](CellPartition::occupancy) allocation per step.
    pub fn occupancy_update(
        &self,
        counts: &mut [usize],
        old_positions: &[Point],
        new_positions: &[Point],
    ) {
        assert_eq!(counts.len(), self.num_cells());
        assert_eq!(old_positions.len(), new_positions.len());
        for (old, new) in old_positions.iter().zip(new_positions) {
            let from = self.linear_index(self.cell_of(*old));
            let to = self.linear_index(self.cell_of(*new));
            if from != to {
                counts[from] -= 1;
                counts[to] += 1;
            }
        }
    }

    /// Checks Claim 1: every cell holds between `R²/λ` and `λR²` nodes.
    /// Returns the smallest `λ ≥ 1` for which the claim holds, or `None` if
    /// some cell is empty (no finite `λ` works).
    pub fn occupancy_concentration(&self, positions: &[Point], radius: f64) -> Option<f64> {
        let counts = self.occupancy(positions);
        let min = *counts.iter().min()? as f64;
        let max = *counts.iter().max()? as f64;
        if min == 0.0 {
            return None;
        }
        let r2 = radius * radius;
        Some((max / r2).max(r2 / min).max(1.0))
    }

    /// Colors every cell relative to the node subset `set` (Claim 3's
    /// black/white classification; cells holding no node at all are reported
    /// separately).
    pub fn classify(&self, positions: &[Point], set: &NodeSet) -> Vec<CellColor> {
        let mut has_any = vec![false; self.num_cells()];
        let mut has_black = vec![false; self.num_cells()];
        for (node, &p) in positions.iter().enumerate() {
            let idx = self.linear_index(self.cell_of(p));
            has_any[idx] = true;
            if set.contains(node as u32) {
                has_black[idx] = true;
            }
        }
        has_any
            .iter()
            .zip(has_black.iter())
            .map(|(&any, &black)| {
                if black {
                    CellColor::Black
                } else if any {
                    CellColor::White
                } else {
                    CellColor::EmptyCell
                }
            })
            .collect()
    }

    /// Counts fully black rows and columns (used in the case analysis of
    /// Claim 3). Returns `(black_rows, black_columns)`.
    pub fn black_lines(&self, colors: &[CellColor]) -> (usize, usize) {
        let m = self.cells_per_axis;
        assert_eq!(colors.len(), m * m);
        let is_black = |x: usize, y: usize| colors[y * m + x] == CellColor::Black;
        let black_rows = (0..m).filter(|&y| (0..m).all(|x| is_black(x, y))).count();
        let black_cols = (0..m).filter(|&x| (0..m).all(|y| is_black(x, y))).count();
        (black_rows, black_cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_partition_dimensions() {
        // Cell side must lie in [R/(√5+1), R/√5].
        for (n, radius) in [(400usize, 5.0f64), (1_000, 8.0), (10_000, 12.0)] {
            let p = CellPartition::for_paper_instance(n, radius);
            let lo = radius / (5f64.sqrt() + 1.0);
            let hi = radius / 5f64.sqrt();
            assert!(
                p.cell_side() >= lo - 1e-9 && p.cell_side() <= hi + 1e-9,
                "n={n} R={radius}: cell side {} outside [{lo}, {hi}]",
                p.cell_side()
            );
        }
    }

    #[test]
    fn cell_indexing_covers_the_square() {
        let p = CellPartition::with_cells(10.0, 4);
        assert_eq!(p.num_cells(), 16);
        assert_eq!(p.cell_of((0.0, 0.0)), (0, 0));
        assert_eq!(p.cell_of((9.99, 9.99)), (3, 3));
        assert_eq!(
            p.cell_of((10.0, 10.0)),
            (3, 3),
            "boundary clamps into the last cell"
        );
        assert_eq!(p.cell_of((2.6, 7.4)), (1, 2));
        assert_eq!(p.linear_index((1, 2)), 9);
    }

    #[test]
    fn occupancy_counts_sum_to_n() {
        let p = CellPartition::with_cells(4.0, 2);
        let pos = [(0.5, 0.5), (3.5, 0.5), (0.5, 3.5), (3.9, 3.9), (1.0, 1.0)];
        let occ = p.occupancy(&pos);
        assert_eq!(occ.iter().sum::<usize>(), 5);
        assert_eq!(occ, vec![2, 1, 1, 1]);
    }

    #[test]
    fn occupancy_update_tracks_full_recount() {
        use rand::{Rng, SeedableRng};
        use rand_chacha::ChaCha8Rng;
        let p = CellPartition::with_cells(8.0, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut pos: Vec<Point> = (0..60)
            .map(|_| (rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)))
            .collect();
        let mut counts = p.occupancy(&pos);
        for _ in 0..20 {
            let new_pos: Vec<Point> = pos
                .iter()
                .map(|&(x, y)| {
                    if rng.gen_bool(0.3) {
                        (
                            (x + rng.gen_range(-2.0f64..2.0)).rem_euclid(8.0),
                            (y + rng.gen_range(-2.0f64..2.0)).rem_euclid(8.0),
                        )
                    } else {
                        (x, y)
                    }
                })
                .collect();
            p.occupancy_update(&mut counts, &pos, &new_pos);
            pos = new_pos;
            assert_eq!(counts, p.occupancy(&pos));
        }
    }

    #[test]
    fn concentration_detects_empty_cells_and_balanced_cells() {
        let p = CellPartition::with_cells(4.0, 2);
        // one cell empty
        let sparse = [(0.5, 0.5), (3.5, 0.5), (0.5, 3.5)];
        assert_eq!(p.occupancy_concentration(&sparse, 2.0), None);
        // perfectly balanced: 1 node per cell, R² = 4 → λ = max(1/4·... ) = 4
        let balanced = [(0.5, 0.5), (3.5, 0.5), (0.5, 3.5), (3.5, 3.5)];
        let lambda = p.occupancy_concentration(&balanced, 2.0).unwrap();
        assert!((lambda - 4.0).abs() < 1e-12);
    }

    #[test]
    fn classification_and_black_lines() {
        let p = CellPartition::with_cells(4.0, 2);
        let pos = [(0.5, 0.5), (3.5, 0.5), (0.5, 3.5), (3.5, 3.5)];
        // nodes 0 and 1 are in the bottom row of cells
        let set = NodeSet::from_iter(4, [0u32, 1]);
        let colors = p.classify(&pos, &set);
        assert_eq!(colors[0], CellColor::Black);
        assert_eq!(colors[1], CellColor::Black);
        assert_eq!(colors[2], CellColor::White);
        assert_eq!(colors[3], CellColor::White);
        let (rows, cols) = p.black_lines(&colors);
        assert_eq!(rows, 1);
        assert_eq!(cols, 0);
        // empty cells are reported as such
        let colors2 = p.classify(&pos[..2], &NodeSet::from_iter(2, [0u32]));
        assert_eq!(colors2[2], CellColor::EmptyCell);
        assert_eq!(colors2[3], CellColor::EmptyCell);
    }
}
