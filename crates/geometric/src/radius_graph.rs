//! Snapshot construction: the graph induced by node positions and a
//! transmission radius, under either the square (Euclidean) or toroidal
//! metric.
//!
//! A uniform bucket grid with cell side `≥ R` reduces the candidate pairs to
//! nodes in the same or adjacent cells, so a snapshot costs
//! `O(n + #candidate pairs)` — the dominant cost of simulating geometric-MEG,
//! incurred once per time step.
//!
//! The construction is allocation-free on the hot path:
//! [`radius_graph_into`] fills a caller-owned
//! [`SnapshotBuf`] using a caller-owned [`RadiusGraphWorkspace`] whose bucket
//! index is a **flat counting sort** — bucket membership, node ids, and the
//! `x`/`y` coordinates each live in one contiguous vector, so the inner
//! candidate loops scan flat `f64` slices (cache-friendly, no per-bucket
//! `Vec`s) through a fixed-lane chunked kernel (`compress_close`) that
//! LLVM autovectorizes: packed squared-distance compares, branchless hit
//! compression, safe code only (the re-verify procedure lives in
//! `docs/PERF.md`).
//! [`radius_graph`] is the one-shot allocating wrapper over the same core
//! (identical edge order), kept for single-snapshot sampling and tests.
//!
//! When only some nodes move between steps, [`radius_graph_update`] skips
//! the full candidate scan: it re-derives the edge delta of the moved set
//! from the bucket index and patches the standing snapshot through
//! [`SnapshotBuf::apply_delta`] — the geometric twin of the edge-MEG
//! transitions stepping path.

use meg_graph::{AdjacencyList, Graph, Node, SnapshotBuf};
use meg_mobility::space::{Point, Region};
use meg_obs as obs;

/// Reusable scratch for the bucket-grid construction.
///
/// Hoisted out of the per-call path (the old implementation allocated a
/// `vec![Vec::new(); k²]` bucket table per snapshot): the caller owns one
/// workspace per evolving graph and every rebuild reuses its five flat
/// vectors, which stop allocating once their capacities reach the run's
/// high-water mark.
#[derive(Clone, Debug, Default)]
pub struct RadiusGraphWorkspace {
    /// Per-bucket occupancy counts (counting-sort pass 1), then reused as the
    /// per-bucket fill cursor in pass 2.
    counts: Vec<usize>,
    /// Per-bucket start offset into the three flat arrays (`k² + 1` entries).
    starts: Vec<usize>,
    /// Node ids, grouped by bucket, index order preserved inside each bucket.
    nodes: Vec<Node>,
    /// `x` coordinate of `nodes[i]` (flat, parallel to `nodes`).
    xs: Vec<f64>,
    /// `y` coordinate of `nodes[i]` (flat, parallel to `nodes`).
    ys: Vec<f64>,
    /// Branchless-compress scratch of the lane kernel ([`compress_close`]):
    /// accepted candidate slots of the current inner scan (the accept branch
    /// mispredicts ~⅓ of the time if taken inline; an unconditional store
    /// plus flag add is far cheaper, and keeping the accept test branch-free
    /// is what lets LLVM vectorize it).
    hits: Vec<usize>,
    /// Moved-node mask for [`radius_graph_update`]: lets a pair whose two
    /// endpoints both moved be emitted exactly once.
    flags: Vec<bool>,
    /// Edge births of the last [`radius_graph_update`] call, as `(min, max)`
    /// pairs — reused scratch, readable by the caller until the next call.
    pub births: Vec<(Node, Node)>,
    /// Edge deaths of the last [`radius_graph_update`] call, same layout.
    pub deaths: Vec<(Node, Node)>,
}

/// Squared-distance test over flat coordinate values — the single distance
/// check shared by every candidate loop (previously duplicated through
/// `Region::distance_squared`, which re-matched the region enum per pair).
#[inline(always)]
fn within_square(ax: f64, ay: f64, bx: f64, by: f64, r2: f64) -> bool {
    let dx = ax - bx;
    let dy = ay - by;
    dx * dx + dy * dy <= r2
}

/// Toroidal variant: folds each axis delta to its minimal wrap-around
/// representative, then applies the same squared test. The fold is the
/// branchless `d.min(side − d)`, which selects the *same value* as the
/// historical `if d > half { side − d }` on every input (for `d ≤ side/2`
/// the direct delta is the minimum, beyond it the complement is — and at
/// exactly `side/2` the two coincide), so accept/reject decisions are
/// bit-identical to `Region::Torus::distance_squared`. Branch-free matters
/// here: this predicate runs inside the lane kernel ([`compress_close`]),
/// where any data-dependent branch would block autovectorization.
#[inline(always)]
fn within_torus(ax: f64, ay: f64, bx: f64, by: f64, r2: f64, side: f64) -> bool {
    let dxa = (ax - bx).abs();
    let dx = dxa.min(side - dxa);
    let dya = (ay - by).abs();
    let dy = dya.min(side - dya);
    dx * dx + dy * dy <= r2
}

/// Metric predicate monomorphised into the candidate kernels: a small `Copy`
/// struct (not a closure) so the two region kinds instantiate
/// [`compress_close`] and [`scan_buckets`] as named, inspectable
/// monomorphizations with fully branchless `accept` bodies.
trait LaneMetric: Copy {
    /// Is `b` within transmission range of `a`?
    fn accept(self, ax: f64, ay: f64, bx: f64, by: f64) -> bool;
}

/// Euclidean metric on the square, radius pre-squared.
#[derive(Clone, Copy)]
struct SquareMetric {
    r2: f64,
}

impl LaneMetric for SquareMetric {
    #[inline(always)]
    fn accept(self, ax: f64, ay: f64, bx: f64, by: f64) -> bool {
        within_square(ax, ay, bx, by, self.r2)
    }
}

/// Wrap-around metric on the torus, radius pre-squared.
#[derive(Clone, Copy)]
struct TorusMetric {
    r2: f64,
    side: f64,
}

impl LaneMetric for TorusMetric {
    #[inline(always)]
    fn accept(self, ax: f64, ay: f64, bx: f64, by: f64) -> bool {
        within_torus(ax, ay, bx, by, self.r2, self.side)
    }
}

/// Lane width of the chunked distance kernel. Bucket occupancy at realistic
/// radii is small (≈ n·r² ≲ 10 nodes), so candidate ranges are short; a
/// narrow chunk vectorizes more of each range (fewer candidates stranded in
/// the scalar remainder) while still filling the 2 × f64 SSE2 lanes of the
/// x86-64 baseline twice over (and a 4 × f64 AVX register exactly, under
/// `-C target-cpu` builds).
const LANES: usize = 4;

/// The vectorizable candidate kernel: tests every `(xs[j], ys[j])` against
/// `(ux, uy)` and compresses the indices of accepted candidates (offset by
/// `base`, ascending) into the front of `hits`, returning how many.
///
/// Safe-code autovectorization contract (see `docs/PERF.md`): the hot loop
/// runs over `chunks_exact(LANES)` computing a `[bool; LANES]` mask — fixed
/// trip count, no data-dependent control flow, and fixed-size `[f64; LANES]`
/// chunk views so no bounds checks survive to block the vectorizer — which
/// LLVM turns into packed f64 compares. The mask is then compressed serially
/// (an unconditional store plus flag add per lane, no branch to mispredict);
/// sub-chunk leftovers take the scalar remainder loop, same branchless
/// compress. Emission order is ascending `j`, exactly what the historical
/// branchy scan produced.
#[inline]
fn compress_close<M: LaneMetric>(
    metric: M,
    ux: f64,
    uy: f64,
    xs: &[f64],
    ys: &[f64],
    base: usize,
    hits: &mut [usize],
) -> usize {
    debug_assert_eq!(xs.len(), ys.len());
    let mut cnt = 0usize;
    let mut off = 0usize;
    let mut cx = xs.chunks_exact(LANES);
    let mut cy = ys.chunks_exact(LANES);
    for (chunk_x, chunk_y) in cx.by_ref().zip(cy.by_ref()) {
        let chunk_x: &[f64; LANES] = chunk_x.try_into().expect("chunks_exact");
        let chunk_y: &[f64; LANES] = chunk_y.try_into().expect("chunks_exact");
        let mut mask = [false; LANES];
        for l in 0..LANES {
            mask[l] = metric.accept(ux, uy, chunk_x[l], chunk_y[l]);
        }
        for (l, &hit) in mask.iter().enumerate() {
            hits[cnt] = base + off + l;
            cnt += hit as usize;
        }
        off += LANES;
    }
    for (l, (&x, &y)) in cx.remainder().iter().zip(cy.remainder()).enumerate() {
        hits[cnt] = base + off + l;
        cnt += metric.accept(ux, uy, x, y) as usize;
    }
    cnt
}

/// Buckets per axis for a region of side `side`: each bucket has side
/// `≥ radius`, so any pair within the radius lies in the same or an adjacent
/// bucket.
#[inline]
fn grid_k(side: f64, radius: f64) -> usize {
    ((side / radius).floor() as usize).max(1)
}

/// Counting sort of the nodes into buckets: three flat arrays
/// (`nodes`/`xs`/`ys` grouped by bucket, `starts` delimiting each group),
/// node index order preserved within each bucket (same per-bucket order as
/// pushing into per-bucket Vecs).
fn build_bucket_index(
    positions: &[Point],
    k: usize,
    bucket_side: f64,
    ws: &mut RadiusGraphWorkspace,
) {
    let n = positions.len();
    let nb = k * k;
    ws.counts.clear();
    ws.counts.resize(nb, 0);
    let bucket_of = |p: Point| -> usize {
        let bx = ((p.0 / bucket_side) as usize).min(k - 1);
        let by = ((p.1 / bucket_side) as usize).min(k - 1);
        by * k + bx
    };
    // Cache each node's bucket id in the `hits` scratch so the placement
    // pass below reuses it instead of redoing the two divisions per node
    // (the scratch is free here — the candidate scan only needs it later).
    ws.hits.resize(n, 0);
    for (i, &p) in positions.iter().enumerate() {
        let b = bucket_of(p);
        ws.hits[i] = b;
        ws.counts[b] += 1;
    }
    ws.starts.clear();
    ws.starts.reserve(nb + 1);
    let mut acc = 0usize;
    ws.starts.push(0);
    for &c in &ws.counts {
        acc += c;
        ws.starts.push(acc);
    }
    ws.counts.copy_from_slice(&ws.starts[..nb]);
    // Resize without `clear()`: the placement pass overwrites every slot, so
    // re-initialising the kept prefix would be wasted work.
    ws.nodes.resize(n, 0);
    ws.xs.resize(n, 0.0);
    ws.ys.resize(n, 0.0);
    for (i, &p) in positions.iter().enumerate() {
        let slot = &mut ws.counts[ws.hits[i]];
        ws.nodes[*slot] = i as Node;
        ws.xs[*slot] = p.0;
        ws.ys[*slot] = p.1;
        *slot += 1;
    }
}

/// The shared bucket-grid core: emits every radius-graph edge as
/// `(min, max)` pairs, each exactly once, in a deterministic order (bucket
/// scan order; identical to the order the historical `AdjacencyList`
/// construction inserted edges in).
fn radius_graph_core(
    positions: &[Point],
    radius: f64,
    region: Region,
    ws: &mut RadiusGraphWorkspace,
    emit: &mut impl FnMut(Node, Node),
) {
    let n = positions.len();
    if n == 0 || radius <= 0.0 {
        return;
    }
    let side = region.side();
    let r2 = radius * radius;
    let wrap = region.is_torus();
    // Number of buckets per axis; each bucket has side ≥ radius so only the
    // 8-neighborhood needs to be examined. On a torus the neighborhood wraps.
    let k = grid_k(side, radius);
    let bucket_side = side / k as f64;
    build_bucket_index(positions, k, bucket_side, ws);

    // Monomorphise the candidate scan per metric so the inner lane kernel
    // carries no per-pair branch on the region kind.
    if wrap {
        scan_buckets(ws, k, true, TorusMetric { r2, side }, emit);
    } else {
        scan_buckets(ws, k, false, SquareMetric { r2 }, emit);
    }
}

/// The bucket-pair candidate scan over an already-built workspace index.
///
/// `metric` is the distance predicate (monomorphised per region); `wrap`
/// selects toroidal neighbor offsets. Every candidate range runs through the
/// chunked lane kernel [`compress_close`] — packed squared-distance compares
/// over the SoA `xs`/`ys` slices, accepted slots compressed branchlessly
/// into `ws.hits` before emission. The emission order (ascending slot among
/// accepted) is exactly the order the historical branchy scan produced.
fn scan_buckets<M: LaneMetric>(
    ws: &mut RadiusGraphWorkspace,
    k: usize,
    wrap: bool,
    metric: M,
    emit: &mut impl FnMut(Node, Node),
) {
    let RadiusGraphWorkspace {
        starts,
        nodes,
        xs,
        ys,
        hits,
        ..
    } = ws;
    let nb = k * k;
    // With ≤ 3 buckets per axis a wrapped neighbor offset can land on a
    // bucket pair that was already examined (the historical implementation
    // deduplicated this with a checked `add_edge` per candidate); a tiny
    // visited-pair mask restores single-visit semantics at bucket-pair
    // granularity instead — same edge set, same emission order, no per-edge
    // membership scan. `k ≤ 3 ⇒ nb ≤ 9 ⇒ nb² ≤ 81`.
    let dedup_pairs = k <= 3;
    let mut visited_pair = [false; 81];
    // Candidate-pair tally for the `bucket_scan_visits` counter: accumulated
    // at bucket-pair granularity (one multiply per pair of buckets, nothing
    // per candidate) and flushed once at the end.
    let mut visits = 0u64;

    let m = k as isize;
    for by in 0..k {
        for bx in 0..k {
            let here_idx = by * k + bx;
            let hs = starts[here_idx];
            let he = starts[here_idx + 1];
            let cnt = (he - hs) as u64;
            visits += cnt * cnt.saturating_sub(1) / 2;
            // Same-bucket pairs: i < j scan order == node index order.
            for i in hs..he {
                let (uxi, uyi) = (xs[i], ys[i]);
                let cnt = compress_close(
                    metric,
                    uxi,
                    uyi,
                    &xs[i + 1..he],
                    &ys[i + 1..he],
                    i + 1,
                    hits,
                );
                for &j in &hits[..cnt] {
                    let (u, v) = (nodes[i], nodes[j]);
                    emit(u.min(v), u.max(v));
                }
            }
            // Forward neighbor buckets (E, SW, S, SE) so each unordered bucket
            // pair is visited once; wrapped duplicates are skipped through the
            // visited-pair mask above.
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let (nx, ny) = if wrap {
                    (
                        ((bx as isize + dx).rem_euclid(m)) as usize,
                        ((by as isize + dy).rem_euclid(m)) as usize,
                    )
                } else {
                    let nx = bx as isize + dx;
                    let ny = by as isize + dy;
                    if nx < 0 || ny < 0 || nx >= m || ny >= m {
                        continue;
                    }
                    (nx as usize, ny as usize)
                };
                let there_idx = ny * k + nx;
                if there_idx == here_idx {
                    continue; // wrapped onto ourselves (tiny grids)
                }
                if dedup_pairs {
                    let key = here_idx.min(there_idx) * nb + here_idx.max(there_idx);
                    if visited_pair[key] {
                        continue;
                    }
                    visited_pair[key] = true;
                }
                let ts = starts[there_idx];
                let te = starts[there_idx + 1];
                visits += (he - hs) as u64 * (te - ts) as u64;
                for i in hs..he {
                    let (uxi, uyi) = (xs[i], ys[i]);
                    let cnt = compress_close(metric, uxi, uyi, &xs[ts..te], &ys[ts..te], ts, hits);
                    for &j in &hits[..cnt] {
                        let (u, v) = (nodes[i], nodes[j]);
                        emit(u.min(v), u.max(v));
                    }
                }
            }
        }
    }
    if obs::installed() {
        obs::add(obs::Counter::BucketScanVisits, visits);
    }
}

/// Builds the radius graph of `positions` **in place**: the snapshot lands in
/// the caller-owned `out` buffer, scratch lives in the caller-owned `ws`.
///
/// Nodes are connected iff their distance (Euclidean in a square, wrap-around
/// on a torus) is at most `radius`. Performs zero heap allocations once both
/// buffers' capacities have warmed up — this is the per-time-step hot path of
/// every geometric evolving graph.
pub fn radius_graph_into(
    positions: &[Point],
    radius: f64,
    region: Region,
    ws: &mut RadiusGraphWorkspace,
    out: &mut SnapshotBuf,
) {
    radius_graph_into_with_slack(positions, radius, region, ws, out, 0);
}

/// Like [`radius_graph_into`], but finishes the buffer with `slack` spare
/// slots per row (see [`SnapshotBuf::build_with_slack`]) so subsequent
/// [`radius_graph_update`] calls can apply edge births in place instead of
/// falling back to a row rebuild.
pub fn radius_graph_into_with_slack(
    positions: &[Point],
    radius: f64,
    region: Region,
    ws: &mut RadiusGraphWorkspace,
    out: &mut SnapshotBuf,
    slack: u32,
) {
    out.begin(positions.len());
    radius_graph_core(positions, radius, region, ws, &mut |u, v| {
        out.push_edge(u, v)
    });
    out.build_with_slack(slack);
}

/// Updates `out` — the radius graph of the *previous* positions — to the
/// radius graph of `positions`, touching only edges incident to `moved`
/// nodes.
///
/// `moved` lists the nodes whose position changed since `out` was last
/// built or updated (no duplicates). Deaths are found by rescanning the
/// stale neighbor rows of moved nodes under the new geometry; births by
/// scanning the 3×3 bucket neighborhood of each moved node's new position;
/// both land through [`SnapshotBuf::apply_delta`]. The work is bucket-local
/// — proportional to the moved set and its candidate neighborhoods, not to
/// `n²` or the full edge count — so maintaining a snapshot across steps that
/// move few nodes is much cheaper than a rebuild. (The bucket index itself
/// is recounted from `positions`, an `O(n)` flat pass.)
///
/// Build `out` with [`radius_graph_into_with_slack`] so births append in
/// place; with zero slack every birth round degrades to `apply_delta`'s full
/// row-rebuild fallback. The applied delta is left in `ws.births` /
/// `ws.deaths` as `(min, max)` pairs until the next call. The whole call
/// performs zero heap allocations once all capacities have warmed up.
/// Returns the `(birth, death)` counts.
///
/// Rows of `out` end up in maintenance order, not the scan order
/// [`radius_graph_into`] produces — the edge *set* is identical, the
/// within-row order is not.
pub fn radius_graph_update(
    positions: &[Point],
    moved: &[Node],
    radius: f64,
    region: Region,
    ws: &mut RadiusGraphWorkspace,
    out: &mut SnapshotBuf,
) -> (usize, usize) {
    ws.births.clear();
    ws.deaths.clear();
    let n = positions.len();
    debug_assert_eq!(out.num_nodes(), n, "snapshot/positions node-count mismatch");
    if n == 0 || moved.is_empty() || radius <= 0.0 {
        return (0, 0);
    }
    let side = region.side();
    let r2 = radius * radius;
    let wrap = region.is_torus();
    let k = grid_k(side, radius);
    let bucket_side = side / k as f64;
    build_bucket_index(positions, k, bucket_side, ws);

    ws.flags.clear();
    ws.flags.resize(n, false);
    for &u in moved {
        debug_assert!(!ws.flags[u as usize], "duplicate node {u} in moved list");
        ws.flags[u as usize] = true;
    }

    // Not monomorphised (or lane-chunked) like the full-rebuild scan: this
    // path processes |moved| nodes, not n², so the per-pair region branch is
    // noise and scalar distance tests are plenty.
    let close = |ax: f64, ay: f64, bx: f64, by: f64| -> bool {
        if wrap {
            within_torus(ax, ay, bx, by, r2, side)
        } else {
            within_square(ax, ay, bx, by, r2)
        }
    };

    let mut visits = 0u64;
    for &u in moved {
        let (ux, uy) = positions[u as usize];
        // Deaths: stale neighbors now beyond the radius. A pair whose two
        // endpoints both moved is emitted by its lower-id endpoint only.
        for &v in out.neighbors(u) {
            if ws.flags[v as usize] && v < u {
                continue;
            }
            let (vx, vy) = positions[v as usize];
            if !close(ux, uy, vx, vy) {
                ws.deaths.push((u.min(v), u.max(v)));
            }
        }
        // Births: candidates in the (wrapped or clamped) 3×3 bucket
        // neighborhood of the new position that are now within the radius
        // and not already adjacent. On tiny grids wrapped offsets collide,
        // so bucket ids are deduplicated before scanning.
        let bx = ((ux / bucket_side) as usize).min(k - 1) as isize;
        let by = ((uy / bucket_side) as usize).min(k - 1) as isize;
        let m = k as isize;
        let mut bucket_ids = [0usize; 9];
        let mut nb_ct = 0usize;
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                let (nx, ny) = if wrap {
                    (
                        (bx + dx).rem_euclid(m) as usize,
                        (by + dy).rem_euclid(m) as usize,
                    )
                } else {
                    let nx = bx + dx;
                    let ny = by + dy;
                    if nx < 0 || ny < 0 || nx >= m || ny >= m {
                        continue;
                    }
                    (nx as usize, ny as usize)
                };
                let b = ny * k + nx;
                if !bucket_ids[..nb_ct].contains(&b) {
                    bucket_ids[nb_ct] = b;
                    nb_ct += 1;
                }
            }
        }
        for &b in &bucket_ids[..nb_ct] {
            visits += (ws.starts[b + 1] - ws.starts[b]) as u64;
            for j in ws.starts[b]..ws.starts[b + 1] {
                let v = ws.nodes[j];
                if v == u || (ws.flags[v as usize] && v < u) {
                    continue;
                }
                if close(ux, uy, ws.xs[j], ws.ys[j]) && !out.has_edge(u, v) {
                    ws.births.push((u.min(v), u.max(v)));
                }
            }
        }
    }
    let outcome = out.apply_delta(&ws.births, &ws.deaths);
    if obs::installed() {
        obs::add(obs::Counter::EdgeBirths, ws.births.len() as u64);
        obs::add(obs::Counter::EdgeDeaths, ws.deaths.len() as u64);
        obs::add(obs::Counter::BucketScanVisits, visits);
        obs::record_delta(outcome.is_rebuilt(), outcome.rebuild_bytes() as u64);
    }
    (ws.births.len(), ws.deaths.len())
}

/// Builds the radius graph of `positions` under the metric of `region`
/// (one-shot allocating form; same construction — and same edge order — as
/// [`radius_graph_into`]).
pub fn radius_graph(positions: &[Point], radius: f64, region: Region) -> AdjacencyList {
    let mut ws = RadiusGraphWorkspace::default();
    let mut g = AdjacencyList::new(positions.len());
    radius_graph_core(positions, radius, region, &mut ws, &mut |u, v| {
        g.add_edge_unchecked(u, v);
    });
    g
}

/// Brute-force reference implementation (O(n²)), used by tests and available
/// for very small inputs.
pub fn radius_graph_brute_force(positions: &[Point], radius: f64, region: Region) -> AdjacencyList {
    let n = positions.len();
    let mut g = AdjacencyList::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            if region.distance_squared(positions[u], positions[v]) <= r2 {
                g.add_edge_unchecked(u as Node, v as Node);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_graph::Graph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_positions(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    fn assert_same_graph(a: &AdjacencyList, b: &AdjacencyList) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for u in 0..a.num_nodes() as Node {
            let mut na = a.neighbors(u).to_vec();
            let mut nb = b.neighbors(u).to_vec();
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "neighbors of {u}");
        }
    }

    #[test]
    fn square_metric_matches_brute_force() {
        let region = Region::Square { side: 20.0 };
        for (n, radius, seed) in [(150usize, 2.0f64, 1u64), (80, 5.0, 2), (60, 0.7, 3)] {
            let pos = random_positions(n, 20.0, seed);
            let fast = radius_graph(&pos, radius, region);
            let slow = radius_graph_brute_force(&pos, radius, region);
            assert_same_graph(&fast, &slow);
        }
    }

    #[test]
    fn torus_metric_matches_brute_force() {
        let region = Region::Torus { side: 20.0 };
        for (n, radius, seed) in [(150usize, 2.0f64, 4u64), (80, 5.0, 5), (50, 9.0, 6)] {
            let pos = random_positions(n, 20.0, seed);
            let fast = radius_graph(&pos, radius, region);
            let slow = radius_graph_brute_force(&pos, radius, region);
            assert_same_graph(&fast, &slow);
        }
    }

    #[test]
    fn in_place_form_matches_allocating_form_exactly() {
        // Same workspace and snapshot buffer reused across every
        // configuration: the in-place construction must agree with the
        // allocating one edge-for-edge (including neighbor order) on both
        // metrics, including tiny wrapped grids where bucket pairs collide.
        let mut ws = RadiusGraphWorkspace::default();
        let mut buf = SnapshotBuf::new();
        let mut checked = 0usize;
        for seed in 0..25u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let n = rng.gen_range(1..120usize);
            let side = rng.gen_range(3.0..25.0f64);
            let radius = rng.gen_range(0.2..side); // spans k = 1 .. large
            for region in [Region::Square { side }, Region::Torus { side }] {
                let pos = random_positions(n, side, 2000 + seed);
                let reference = radius_graph(&pos, radius, region);
                radius_graph_into(&pos, radius, region, &mut ws, &mut buf);
                assert_eq!(buf.num_nodes(), reference.num_nodes());
                assert_eq!(buf.num_edges(), reference.num_edges(), "seed {seed}");
                for u in 0..n as Node {
                    assert_eq!(
                        buf.neighbors(u),
                        reference.neighbors(u),
                        "seed {seed} {region:?} node {u}"
                    );
                }
                let brute = radius_graph_brute_force(&pos, radius, region);
                assert_same_graph(&reference, &brute);
                checked += 1;
            }
        }
        assert_eq!(checked, 50);
    }

    #[test]
    fn workspace_capacities_stabilise_after_warmup() {
        let region = Region::Torus { side: 12.0 };
        let mut ws = RadiusGraphWorkspace::default();
        let mut buf = SnapshotBuf::new();
        let pos = random_positions(400, 12.0, 9);
        for _ in 0..5 {
            radius_graph_into(&pos, 2.5, region, &mut ws, &mut buf);
        }
        let warm = (
            ws.counts.capacity(),
            ws.starts.capacity(),
            ws.nodes.capacity(),
            ws.xs.capacity(),
            ws.ys.capacity(),
            buf.capacities(),
        );
        for _ in 0..20 {
            radius_graph_into(&pos, 2.5, region, &mut ws, &mut buf);
            let now = (
                ws.counts.capacity(),
                ws.starts.capacity(),
                ws.nodes.capacity(),
                ws.xs.capacity(),
                ws.ys.capacity(),
                buf.capacities(),
            );
            assert_eq!(now, warm, "workspace capacity drifted after warm-up");
        }
    }

    #[test]
    fn movement_delta_matches_full_rebuild() {
        // Rounds of random movement (sometimes a few nodes, sometimes half
        // the population, crossing the torus seam freely) maintained through
        // radius_graph_update must track the brute-force graph of the
        // current positions exactly, as an edge set.
        let side = 12.0;
        for (region, seed) in [
            (Region::Square { side }, 11u64),
            (Region::Torus { side }, 12u64),
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = 150usize;
            let radius = 2.0;
            let mut pos = random_positions(n, side, 31 * seed);
            let mut ws = RadiusGraphWorkspace::default();
            let mut snap = SnapshotBuf::new();
            radius_graph_into_with_slack(&pos, radius, region, &mut ws, &mut snap, 4);
            for round in 0..30 {
                let movers: Vec<Node> = (0..n as Node)
                    .filter(|_| rng.gen_bool(if round % 3 == 0 { 0.05 } else { 0.5 }))
                    .collect();
                for &u in &movers {
                    let p = &mut pos[u as usize];
                    p.0 = (p.0 + rng.gen_range(-1.5f64..1.5)).rem_euclid(side);
                    p.1 = (p.1 + rng.gen_range(-1.5f64..1.5)).rem_euclid(side);
                }
                let (b, d) = radius_graph_update(&pos, &movers, radius, region, &mut ws, &mut snap);
                assert_eq!((b, d), (ws.births.len(), ws.deaths.len()));
                let reference = radius_graph_brute_force(&pos, radius, region);
                assert_eq!(
                    snap.num_edges(),
                    reference.num_edges(),
                    "{region:?} round {round}"
                );
                for u in 0..n as Node {
                    let mut got = snap.neighbors(u).to_vec();
                    got.sort_unstable();
                    let mut want = reference.neighbors(u).to_vec();
                    want.sort_unstable();
                    assert_eq!(got, want, "{region:?} round {round} node {u}");
                }
            }
        }
    }

    #[test]
    fn movement_delta_tracks_a_seam_crossing() {
        let region = Region::Torus { side: 10.0 };
        let mut pos = vec![(5.0, 5.0), (5.9, 5.0), (0.3, 5.0)];
        let mut ws = RadiusGraphWorkspace::default();
        let mut snap = SnapshotBuf::new();
        radius_graph_into_with_slack(&pos, 1.0, region, &mut ws, &mut snap, 2);
        assert!(snap.has_edge(0, 1));
        assert_eq!(snap.num_edges(), 1);
        // Node 1 jumps across the seam: loses node 0, gains node 2 through
        // the wrap-around metric.
        pos[1] = (9.9, 5.0);
        let (b, d) = radius_graph_update(&pos, &[1], 1.0, region, &mut ws, &mut snap);
        assert_eq!((b, d), (1, 1));
        assert!(snap.has_edge(1, 2));
        assert!(!snap.has_edge(0, 1));
        assert_eq!(snap.num_edges(), 1);
    }

    #[test]
    fn movement_delta_degenerate_cases() {
        let region = Region::Square { side: 5.0 };
        let pos = random_positions(40, 5.0, 13);
        let mut ws = RadiusGraphWorkspace::default();
        let mut snap = SnapshotBuf::new();
        radius_graph_into_with_slack(&pos, 1.0, region, &mut ws, &mut snap, 2);
        let before: Vec<usize> = (0..40u32).map(|u| snap.degree(u)).collect();
        // Empty moved list: no-op.
        let out = radius_graph_update(&pos, &[], 1.0, region, &mut ws, &mut snap);
        assert_eq!(out, (0, 0));
        // "Movers" that did not actually change position: no delta either.
        let out = radius_graph_update(&pos, &[0, 7, 39], 1.0, region, &mut ws, &mut snap);
        assert_eq!(out, (0, 0));
        let after: Vec<usize> = (0..40u32).map(|u| snap.degree(u)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn movement_delta_is_allocation_free_after_warmup() {
        // Small-move rounds with per-row slack must stop growing every
        // buffer involved: the workspace index, the delta scratch, and the
        // snapshot itself (in-place apply_delta, no rebuild).
        let region = Region::Torus { side: 12.0 };
        let n = 300usize;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut pos = random_positions(n, 12.0, 17);
        let mut ws = RadiusGraphWorkspace::default();
        let mut snap = SnapshotBuf::new();
        radius_graph_into_with_slack(&pos, 2.0, region, &mut ws, &mut snap, 8);
        let mut movers = Vec::new();
        let step = |pos: &mut Vec<Point>,
                    movers: &mut Vec<Node>,
                    ws: &mut RadiusGraphWorkspace,
                    snap: &mut SnapshotBuf,
                    rng: &mut ChaCha8Rng| {
            movers.clear();
            movers.extend((0..n as Node).filter(|_| rng.gen_bool(0.03)));
            for &u in movers.iter() {
                let p = &mut pos[u as usize];
                p.0 = (p.0 + rng.gen_range(-0.4f64..0.4)).rem_euclid(12.0);
                p.1 = (p.1 + rng.gen_range(-0.4f64..0.4)).rem_euclid(12.0);
            }
            radius_graph_update(pos, movers, 2.0, region, ws, snap);
        };
        // Warm-up: a high-churn round first (teleport half the population)
        // to deterministically exercise apply_delta's rebuild fallback, so
        // the staging buffer and regenerated row slack reach their
        // high-water capacities before we start measuring.
        movers.extend(0..(n / 2) as Node);
        for &u in movers.iter() {
            pos[u as usize] = (rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0));
        }
        radius_graph_update(&pos, &movers, 2.0, region, &mut ws, &mut snap);
        for _ in 0..10 {
            step(&mut pos, &mut movers, &mut ws, &mut snap, &mut rng);
        }
        let warm = (
            ws.counts.capacity(),
            ws.nodes.capacity(),
            ws.flags.capacity(),
            ws.births.capacity(),
            ws.deaths.capacity(),
            snap.capacities(),
        );
        for _ in 0..50 {
            step(&mut pos, &mut movers, &mut ws, &mut snap, &mut rng);
            let now = (
                ws.counts.capacity(),
                ws.nodes.capacity(),
                ws.flags.capacity(),
                ws.births.capacity(),
                ws.deaths.capacity(),
                snap.capacities(),
            );
            assert_eq!(now, warm, "delta-maintenance capacity drifted");
        }
    }

    #[test]
    fn torus_connects_across_the_seam() {
        let region = Region::Torus { side: 10.0 };
        let pos = [(0.2, 5.0), (9.8, 5.0), (5.0, 5.0)];
        let g = radius_graph(&pos, 1.0, region);
        assert!(
            g.has_edge(0, 1),
            "nodes near opposite edges are close on the torus"
        );
        assert_eq!(g.num_edges(), 1);
        // Same positions under the square metric are far apart.
        let sq = radius_graph(&pos, 1.0, Region::Square { side: 10.0 });
        assert_eq!(sq.num_edges(), 0);
    }

    #[test]
    fn radius_larger_than_region_gives_complete_graph() {
        let region = Region::Square { side: 5.0 };
        let pos = random_positions(30, 5.0, 7);
        let g = radius_graph(&pos, 10.0, region);
        assert_eq!(g.num_edges(), 30 * 29 / 2);
        let torus = radius_graph(&pos, 10.0, Region::Torus { side: 5.0 });
        assert_eq!(torus.num_edges(), 30 * 29 / 2);
    }

    #[test]
    fn degenerate_inputs() {
        let region = Region::Square { side: 5.0 };
        assert_eq!(radius_graph(&[], 1.0, region).num_nodes(), 0);
        assert_eq!(radius_graph(&[(1.0, 1.0)], 1.0, region).num_edges(), 0);
        assert_eq!(
            radius_graph(&[(1.0, 1.0), (1.5, 1.0)], 0.0, region).num_edges(),
            0
        );
        let mut ws = RadiusGraphWorkspace::default();
        let mut buf = SnapshotBuf::new();
        radius_graph_into(&[], 1.0, region, &mut ws, &mut buf);
        assert_eq!(buf.num_nodes(), 0);
        radius_graph_into(&[(1.0, 1.0), (1.5, 1.0)], 0.0, region, &mut ws, &mut buf);
        assert_eq!(buf.num_nodes(), 2);
        assert_eq!(buf.num_edges(), 0);
    }
}
