//! Snapshot construction: the graph induced by node positions and a
//! transmission radius, under either the square (Euclidean) or toroidal
//! metric.
//!
//! A uniform bucket grid with cell side `≥ R` reduces the candidate pairs to
//! nodes in the same or adjacent cells, so a snapshot costs
//! `O(n + #candidate pairs)` — the dominant cost of simulating geometric-MEG,
//! incurred once per time step.

use meg_graph::{AdjacencyList, Node};
use meg_mobility::space::{Point, Region};

/// Builds the radius graph of `positions` under the metric of `region`.
///
/// Nodes are connected iff their distance (Euclidean in a square, wrap-around
/// on a torus) is at most `radius`.
pub fn radius_graph(positions: &[Point], radius: f64, region: Region) -> AdjacencyList {
    let n = positions.len();
    let mut g = AdjacencyList::new(n);
    if n == 0 || radius <= 0.0 {
        return g;
    }
    let side = region.side();
    let r2 = radius * radius;
    // Number of buckets per axis; each bucket has side ≥ radius so only the
    // 8-neighborhood needs to be examined. On a torus the neighborhood wraps.
    let buckets_per_axis = ((side / radius).floor() as usize).max(1);
    let bucket_side = side / buckets_per_axis as f64;
    let bucket_of = |p: Point| -> (usize, usize) {
        let bx = ((p.0 / bucket_side) as usize).min(buckets_per_axis - 1);
        let by = ((p.1 / bucket_side) as usize).min(buckets_per_axis - 1);
        (bx, by)
    };
    let mut buckets: Vec<Vec<Node>> = vec![Vec::new(); buckets_per_axis * buckets_per_axis];
    for (i, &p) in positions.iter().enumerate() {
        let (bx, by) = bucket_of(p);
        buckets[by * buckets_per_axis + bx].push(i as Node);
    }
    let wrap = region.is_torus();
    let m = buckets_per_axis as isize;
    for by in 0..buckets_per_axis {
        for bx in 0..buckets_per_axis {
            let here = &buckets[by * buckets_per_axis + bx];
            // Same-bucket pairs.
            for (i, &u) in here.iter().enumerate() {
                for &v in &here[i + 1..] {
                    if region.distance_squared(positions[u as usize], positions[v as usize]) <= r2 {
                        g.add_edge_unchecked(u.min(v), u.max(v));
                    }
                }
            }
            // Forward neighbor buckets (E, SW, S, SE) so each unordered bucket
            // pair is visited once. With few buckets per axis the wrapped
            // neighbor can coincide with an already-visited bucket, so guard
            // against processing a pair twice via a canonical-index check.
            for (dx, dy) in [(1isize, 0isize), (-1, 1), (0, 1), (1, 1)] {
                let (nx, ny) = if wrap {
                    (
                        ((bx as isize + dx).rem_euclid(m)) as usize,
                        ((by as isize + dy).rem_euclid(m)) as usize,
                    )
                } else {
                    let nx = bx as isize + dx;
                    let ny = by as isize + dy;
                    if nx < 0 || ny < 0 || nx >= m || ny >= m {
                        continue;
                    }
                    (nx as usize, ny as usize)
                };
                let here_idx = by * buckets_per_axis + bx;
                let there_idx = ny * buckets_per_axis + nx;
                if there_idx == here_idx {
                    continue; // wrapped onto ourselves (tiny grids)
                }
                let there = &buckets[there_idx];
                for &u in here {
                    for &v in there {
                        if region.distance_squared(positions[u as usize], positions[v as usize])
                            <= r2
                        {
                            // On wrapped tiny grids the same bucket pair can be
                            // reached through two different offsets; add_edge
                            // (checked) keeps the graph simple in that case.
                            if buckets_per_axis <= 3 {
                                g.add_edge(u.min(v), u.max(v));
                            } else {
                                g.add_edge_unchecked(u.min(v), u.max(v));
                            }
                        }
                    }
                }
            }
        }
    }
    g
}

/// Brute-force reference implementation (O(n²)), used by tests and available
/// for very small inputs.
pub fn radius_graph_brute_force(positions: &[Point], radius: f64, region: Region) -> AdjacencyList {
    let n = positions.len();
    let mut g = AdjacencyList::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            if region.distance_squared(positions[u], positions[v]) <= r2 {
                g.add_edge_unchecked(u as Node, v as Node);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use meg_graph::Graph;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_positions(n: usize, side: f64, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect()
    }

    fn assert_same_graph(a: &AdjacencyList, b: &AdjacencyList) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        for u in 0..a.num_nodes() as Node {
            let mut na = a.neighbors(u).to_vec();
            let mut nb = b.neighbors(u).to_vec();
            na.sort_unstable();
            nb.sort_unstable();
            assert_eq!(na, nb, "neighbors of {u}");
        }
    }

    #[test]
    fn square_metric_matches_brute_force() {
        let region = Region::Square { side: 20.0 };
        for (n, radius, seed) in [(150usize, 2.0f64, 1u64), (80, 5.0, 2), (60, 0.7, 3)] {
            let pos = random_positions(n, 20.0, seed);
            let fast = radius_graph(&pos, radius, region);
            let slow = radius_graph_brute_force(&pos, radius, region);
            assert_same_graph(&fast, &slow);
        }
    }

    #[test]
    fn torus_metric_matches_brute_force() {
        let region = Region::Torus { side: 20.0 };
        for (n, radius, seed) in [(150usize, 2.0f64, 4u64), (80, 5.0, 5), (50, 9.0, 6)] {
            let pos = random_positions(n, 20.0, seed);
            let fast = radius_graph(&pos, radius, region);
            let slow = radius_graph_brute_force(&pos, radius, region);
            assert_same_graph(&fast, &slow);
        }
    }

    #[test]
    fn torus_connects_across_the_seam() {
        let region = Region::Torus { side: 10.0 };
        let pos = [(0.2, 5.0), (9.8, 5.0), (5.0, 5.0)];
        let g = radius_graph(&pos, 1.0, region);
        assert!(
            g.has_edge(0, 1),
            "nodes near opposite edges are close on the torus"
        );
        assert_eq!(g.num_edges(), 1);
        // Same positions under the square metric are far apart.
        let sq = radius_graph(&pos, 1.0, Region::Square { side: 10.0 });
        assert_eq!(sq.num_edges(), 0);
    }

    #[test]
    fn radius_larger_than_region_gives_complete_graph() {
        let region = Region::Square { side: 5.0 };
        let pos = random_positions(30, 5.0, 7);
        let g = radius_graph(&pos, 10.0, region);
        assert_eq!(g.num_edges(), 30 * 29 / 2);
        let torus = radius_graph(&pos, 10.0, Region::Torus { side: 5.0 });
        assert_eq!(torus.num_edges(), 30 * 29 / 2);
    }

    #[test]
    fn degenerate_inputs() {
        let region = Region::Square { side: 5.0 };
        assert_eq!(radius_graph(&[], 1.0, region).num_nodes(), 0);
        assert_eq!(radius_graph(&[(1.0, 1.0)], 1.0, region).num_edges(), 0);
        assert_eq!(
            radius_graph(&[(1.0, 1.0), (1.5, 1.0)], 0.0, region).num_edges(),
            0
        );
    }
}
