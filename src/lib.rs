//! # meg — Information Spreading in Stationary Markovian Evolving Graphs
//!
//! An implementation and experimental reproduction of
//! A. Clementi, A. Monti, F. Pasquale, R. Silvestri,
//! *"Information Spreading in Stationary Markovian Evolving Graphs"*
//! (IEEE IPDPS 2009; full version arXiv:1103.0741).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] | static-graph substrate: adjacency/CSR structures, node sets, BFS, connectivity, diameter, expansion measurement, generators |
//! | [`markov`] | finite Markov chains: the two-state edge chain, random walks on support graphs, stationary laws, mixing diagnostics |
//! | [`stats`] | experiment substrate: summaries, confidence intervals, scaling fits, tables, seeded parallel trial runner |
//! | [`mobility`] | node-mobility models: grid random walk (the paper's model), walkers on a torus, random waypoint, billiard |
//! | [`core`] | the paper's contribution: evolving-graph traits, the flooding process, expander sequences and bound evaluators, closed-form bounds, protocol variants, adversarial constructions |
//! | [`geometric`] | geometric-MEG: mobility + transmission radius, cell-partition machinery of Theorem 3.2 |
//! | [`edge`] | edge-MEG: dense and sparse per-edge two-state chain engines |
//! | [`engine`] | declarative scenario engine: experiments as data (substrates × protocols × sweep grid), JSON round-tripping, output sinks, built-in scenarios, the `meg-lab` CLI |
//! | [`obs`] | zero-overhead-when-off instrumentation: counters, per-round gauges, span timings, metrics reports |
//!
//! ## Quick start
//!
//! ```
//! use meg::prelude::*;
//!
//! // A stationary edge-MEG just above the connectivity threshold.
//! let n = 500;
//! let p_hat = 3.0 * (n as f64).ln() / n as f64;
//! let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
//! let mut evolving = SparseEdgeMeg::stationary(params, 42);
//!
//! // Flood from node 0 and compare with the paper's Theorem 4.3 shape.
//! let result = flood(&mut evolving, 0, 10_000);
//! let time = result.flooding_time().expect("connected regime floods");
//! let bounds = params.bounds();
//! assert!((time as f64) <= 10.0 * bounds.upper_shape());
//! assert!(time >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use meg_core as core;
pub use meg_edge as edge;
pub use meg_engine as engine;
pub use meg_geometric as geometric;
pub use meg_graph as graph;
pub use meg_markov as markov;
pub use meg_mobility as mobility;
pub use meg_obs as obs;
pub use meg_stats as stats;

/// The most commonly used items, importable with `use meg::prelude::*`.
pub mod prelude {
    pub use meg_core::adversarial::{RotatingBridge, RotatingStar};
    pub use meg_core::bounds::{EdgeBounds, GeometricBounds};
    pub use meg_core::evolving::{EvolvingGraph, FrozenGraph, InitialDistribution, ScheduledGraph};
    pub use meg_core::expansion::ExpanderSequence;
    pub use meg_core::flooding::{
        flood, flood_static, FloodingOutcome, FloodingResult, FloodingState,
    };
    pub use meg_core::protocols::{parsimonious_flood, probabilistic_flood, push_pull_gossip};
    pub use meg_core::spec;
    pub use meg_edge::init::AutoEdgeMeg;
    pub use meg_edge::{DenseEdgeMeg, EdgeMegParams, SparseEdgeMeg};
    pub use meg_engine::{
        builtin, run_scenario, OutputFormat, Param, Protocol, Scenario, Substrate, Sweep,
    };
    pub use meg_geometric::{GeometricMeg, GeometricMegParams};
    pub use meg_graph::{AdjacencyList, Csr, Graph, Node, NodeSet};
    pub use meg_markov::TwoStateChain;
    pub use meg_mobility::{Billiard, GridWalk, Mobility, RandomWaypoint, TorusWalkers};
    pub use meg_stats::{ConfidenceInterval, Summary, Table};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let params = EdgeMegParams::with_stationary(120, 0.1, 0.5);
        let mut meg = DenseEdgeMeg::stationary(params, 0);
        let r = flood(&mut meg, 3, 500);
        assert_eq!(r.outcome, FloodingOutcome::Completed);
    }
}
