//! Diameter tells you (almost) nothing about flooding time in a dynamic
//! network.
//!
//! The introduction of the paper observes that one can build an n-node dynamic
//! network whose every snapshot has constant diameter while flooding needs
//! Θ(n) rounds. The `RotatingStar` is such a witness: every snapshot is a star
//! (diameter 2), but the centre rotates one position per step, so from the
//! worst source exactly one new node learns the message per round.
//!
//! The `RotatingBridge` (two cliques joined by a rotating bridge, diameter 3)
//! shows the contrast: constant diameter *plus good expansion* does give fast
//! flooding — it is the expansion, not the diameter, that the paper's general
//! theorem turns into a bound.
//!
//! Run with:
//! ```text
//! cargo run --release --example adversarial_diameter
//! ```

use meg::prelude::*;

// The rotating bridge needs an even node count, hence `scaled_even`.
#[path = "support/scale.rs"]
mod support;
use support::scaled_even as scaled;

fn main() {
    let mut table = Table::new(
        "Snapshot diameter vs measured flooding time",
        &[
            "n",
            "evolving graph",
            "snapshot diameter",
            "worst-source flooding time",
        ],
    );

    for n in [scaled(64, 8), scaled(256, 16), scaled(1024, 32)] {
        let mut star = RotatingStar::new(n, 0);
        let source = star.worst_source();
        let diameter = star.snapshot_diameter();
        let time = flood(&mut star, source, 10 * n as u64)
            .flooding_time()
            .expect("rotating star always completes");
        table.push_row(&[
            n.to_string(),
            "rotating star".to_string(),
            diameter.to_string(),
            time.to_string(),
        ]);

        let mut bridge = RotatingBridge::new(n);
        let diameter = bridge.snapshot_diameter();
        let time = flood(&mut bridge, 1, 10 * n as u64)
            .flooding_time()
            .expect("rotating bridge always completes");
        table.push_row(&[
            n.to_string(),
            "rotating bridge (two cliques)".to_string(),
            diameter.to_string(),
            time.to_string(),
        ]);
    }

    println!("{}", table.render_ascii());
    println!(
        "Reading: both evolving graphs keep a tiny snapshot diameter, yet the rotating\n\
         star needs n−1 rounds to flood while the rotating bridge needs 3. Diameter\n\
         alone is useless as a flooding predictor — what the rotating star lacks, and\n\
         what Theorem 2.5 actually uses, is node expansion of the snapshots."
    );

    // Verify the closed-form prediction for the star on one more size.
    let n = scaled(500, 24);
    let mut star = RotatingStar::new(n, 3);
    let predicted = star.predicted_worst_flooding_time();
    let source = star.worst_source();
    let measured = flood(&mut star, source, 10 * n as u64)
        .flooding_time()
        .unwrap();
    println!("\nClosed-form check at n = {n}: predicted {predicted}, measured {measured}.");
    assert_eq!(predicted, measured);
}
