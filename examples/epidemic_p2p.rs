//! Unstructured peer-to-peer overlay / epidemic scenario: connections between
//! peers come and go with strong temporal correlation (a link that exists now
//! probably still exists in a moment), which is exactly the edge-Markovian
//! model. A data item is injected at one peer and flooded.
//!
//! The example contrasts:
//! * the *stationary* network (the overlay has been running for a while) —
//!   dissemination is fast, `Θ(log n / log(np̂))`;
//! * a *cold start* (the overlay begins with no connections at all) — the same
//!   protocol can take orders of magnitude longer when links are born rarely,
//!   the "exponential gap" the paper points out;
//! * flooding vs push–pull gossip message overhead on the same dynamic
//!   overlay.
//!
//! Run with:
//! ```text
//! cargo run --release --example epidemic_p2p
//! ```

use meg::prelude::*;
use meg::stats::table::fmt_f64;

#[path = "support/scale.rs"]
mod support;
use support::scaled;

fn main() {
    let n = scaled(1_000, 150);
    let p_hat = 4.0 * (n as f64).ln() / n as f64; // comfortably connected overlay
    let seed = 77;

    println!("peers n = {n}, stationary link probability p̂ = {p_hat:.4}\n");

    // --------------------------------------------------- stationary vs cold start
    let mut table = Table::new(
        "Dissemination time: warm (stationary) overlay vs cold start, by link churn",
        &[
            "death rate q",
            "birth rate p",
            "warm (rounds)",
            "cold start (rounds)",
            "gap",
        ],
    );
    for q in [0.5, 0.05, 0.005] {
        let params = EdgeMegParams::with_stationary(n, p_hat, q);
        let mut warm = SparseEdgeMeg::stationary(params, seed);
        let warm_time = flood(&mut warm, 0, 1_000_000)
            .flooding_time()
            .expect("stationary overlay floods");
        let mut cold = SparseEdgeMeg::new(params, InitialDistribution::Empty, seed + 1);
        let cold_time = flood(&mut cold, 0, 1_000_000)
            .flooding_time()
            .expect("cold start eventually floods");
        table.push_row(&[
            fmt_f64(q),
            format!("{:.2e}", params.p),
            warm_time.to_string(),
            cold_time.to_string(),
            fmt_f64(cold_time as f64 / warm_time as f64),
        ]);
    }
    println!("{}", table.render_ascii());
    println!(
        "Reading: the warm overlay disseminates in a handful of rounds regardless of churn,\n\
         while the cold start pays roughly 1/p rounds just waiting for links to appear —\n\
         the stationary-vs-worst-case gap of Section 1 of the paper.\n"
    );

    // --------------------------------------------------------- protocol overhead
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.2);
    let mut rng = meg::stats::seeds::labeled_rng(seed, "p2p-protocols");

    let mut flood_overlay = SparseEdgeMeg::stationary(params, seed + 10);
    let flood_run = probabilistic_flood(&mut flood_overlay, 0, 1.0, 10_000, &mut rng);

    let mut lazy_overlay = SparseEdgeMeg::stationary(params, seed + 11);
    let lazy_run = probabilistic_flood(&mut lazy_overlay, 0, 0.3, 10_000, &mut rng);

    let mut gossip_overlay = SparseEdgeMeg::stationary(params, seed + 12);
    let gossip_run = push_pull_gossip(&mut gossip_overlay, 0, 10_000, &mut rng);

    let mut pars_overlay = SparseEdgeMeg::stationary(params, seed + 13);
    let pars_run = parsimonious_flood(&mut pars_overlay, 0, 2, 10_000);

    let mut protocols = Table::new(
        "Protocol comparison on the same stationary overlay",
        &["protocol", "completed", "rounds", "messages"],
    );
    for (name, run) in [
        ("flooding", &flood_run),
        ("probabilistic flooding (β = 0.3)", &lazy_run),
        ("push–pull gossip", &gossip_run),
        ("parsimonious flooding (k = 2)", &pars_run),
    ] {
        protocols.push_row(&[
            name.to_string(),
            run.completed.to_string(),
            run.rounds.to_string(),
            run.messages_sent.to_string(),
        ]);
    }
    println!("{}", protocols.render_ascii());
    println!(
        "Reading: plain flooding is the latency baseline every alternative is measured\n\
         against (as the paper argues); the alternatives trade rounds for messages."
    );
}
