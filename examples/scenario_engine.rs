//! Scenario engine walkthrough: define an experiment as *data*, round-trip it
//! through JSON, run it with a deterministic master seed, and render the rows
//! in all three output formats.
//!
//! Run with:
//! ```text
//! cargo run --release --example scenario_engine
//! ```
//!
//! The same scenario could be saved to a file and executed with
//! `meg-lab run --file scenario.json` — the engine is the single entry point
//! for hand-written and generated experiments alike.

use meg::engine::harness::render_scenario;
use meg::engine::{run_scenario, OutputFormat, Scenario};

#[path = "support/scale.rs"]
mod support;
use support::example_scale;

fn main() {
    // A two-family comparison: flooding and push–pull on a sparse stationary
    // edge-MEG and on the paper's geometric-MEG, sweeping the node count.
    let scenario_json = r#"{
        "name": "example_two_families",
        "description": "flooding vs push-pull on both MEG families",
        "substrates": [
            {"family": "edge", "n": 600, "engine": "sparse",
             "p_hat": {"log_factor": 3}, "q": 0.5, "init": "stationary"},
            {"family": "geometric", "n": 600, "mobility": "grid_walk",
             "radius": {"threshold_factor": 1.2},
             "move_radius": {"radius_fraction": 0.5}}
        ],
        "protocols": ["flooding", "push_pull"],
        "sweep": {"axes": [{"param": "n", "values": [300, 600]}]},
        "trials": 3,
        "round_budget": 100000
    }"#;

    let scenario = Scenario::parse(scenario_json).expect("valid scenario JSON");
    // Experiments-as-data round-trip losslessly.
    assert_eq!(
        Scenario::parse(&scenario.to_json().render()).unwrap(),
        scenario
    );
    let scenario = scenario.scaled(example_scale());

    let seed = 2009;
    let rows = run_scenario(&scenario, seed).expect("scenario runs");
    println!(
        "ran `{}`: {} cells, {} trials each, master seed {seed}\n",
        scenario.name,
        rows.len(),
        scenario.trials
    );

    // The same rows, through each sink.
    for format in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
        println!("--- {format:?} ---");
        print!(
            "{}",
            render_scenario(&scenario, seed, format).expect("render")
        );
        println!();
    }

    // Determinism: the engine's contract is that the same seed reproduces the
    // same rows — and each row's recorded cell seed reproduces it alone.
    let again = run_scenario(&scenario, seed).expect("scenario runs");
    assert_eq!(rows, again, "same master seed ⇒ identical rows");
    println!(
        "determinism check passed: {} rows identical across two runs",
        rows.len()
    );

    // Every row carries its spec regime, so theorem-hypothesis bookkeeping
    // is automatic.
    for row in &rows {
        assert!(!row.regime.is_empty());
    }
    let completed = rows.iter().filter(|r| r.completion_rate > 0.0).count();
    println!("{completed}/{} cells saw completed trials", rows.len());
}
