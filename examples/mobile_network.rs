//! Mobile ad-hoc network scenario: a fleet of vehicles with fixed-range
//! radios drives around a square region; a traffic alert is flooded from one
//! vehicle and we ask how the transmission range and the vehicle speed affect
//! the time until everyone has the alert.
//!
//! This is the scenario the paper's geometric-MEG results are about:
//! * flooding time scales like √n / R (Corollary 3.6), and
//! * as long as the speed r is at most comparable to R, making vehicles move
//!   faster does not help or hurt much.
//!
//! Run with:
//! ```text
//! cargo run --release --example mobile_network
//! ```

use meg::prelude::*;
use meg::stats::table::fmt_f64;

fn average_flooding_time(n: usize, move_radius: f64, radius: f64, trials: usize, seed: u64) -> f64 {
    let mut total = 0.0;
    let mut completed = 0usize;
    for t in 0..trials {
        let params = GeometricMegParams::new(n, move_radius, radius);
        let mut meg = GeometricMeg::from_params(params, seed + t as u64);
        if let Some(time) = flood(&mut meg, 0, 100_000).flooding_time() {
            total += time as f64;
            completed += 1;
        }
    }
    if completed == 0 {
        f64::NAN
    } else {
        total / completed as f64
    }
}

#[path = "support/scale.rs"]
mod support;
use support::scaled;

fn main() {
    let n = scaled(1_200, 150);
    let trials = 3usize;
    let threshold = spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);
    println!(
        "fleet size n = {n}, square side = {:.1}, connectivity threshold R ≥ {threshold:.2}\n",
        (n as f64).sqrt()
    );

    // ------------------------------------------------ sweep transmission range
    let mut by_radius = Table::new(
        "Alert dissemination time vs radio range (speed r = R/2)",
        &["R", "mean flooding time", "√n/R (theory shape)"],
    );
    for factor in [1.0, 1.5, 2.0, 3.0] {
        let radius = threshold * factor;
        let mean = average_flooding_time(n, radius / 2.0, radius, trials, 7_000);
        let shape = (n as f64).sqrt() / radius;
        by_radius.push_row(&[fmt_f64(radius), fmt_f64(mean), fmt_f64(shape)]);
    }
    println!("{}", by_radius.render_ascii());

    // ------------------------------------------------------- sweep vehicle speed
    let radius = threshold * 1.5;
    let mut by_speed = Table::new(
        "Alert dissemination time vs vehicle speed (fixed R)",
        &["r / R", "mean flooding time"],
    );
    for ratio in [0.0, 0.25, 0.5, 1.0, 2.0] {
        // move radius 0 is not allowed by the model; use a tiny value that the
        // grid resolution rounds down to "no movement".
        let move_radius = if ratio == 0.0 { 0.4 } else { radius * ratio };
        let mean = average_flooding_time(n, move_radius, radius, trials, 9_000);
        by_speed.push_row(&[fmt_f64(ratio), fmt_f64(mean)]);
    }
    println!("{}", by_speed.render_ascii());

    println!(
        "Reading: dissemination time falls roughly like 1/R as the radio range grows,\n\
         and for speeds up to about the radio range it is essentially flat — exactly\n\
         the behaviour Theorem 3.4 / Corollary 3.6 predict."
    );
}
