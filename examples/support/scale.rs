//! Problem-size scaling shared by every example (included via `#[path]`, so
//! it is not itself an example target).
//!
//! `MEG_EXAMPLE_SCALE` multiplies each example's nominal problem sizes; CI
//! smoke-runs the examples with `MEG_EXAMPLE_SCALE=0.1` (see `ci.sh`). It is
//! deliberately distinct from the experiment binaries' `MEG_SCALE` so tuning
//! one surface never silently changes the other.

#![allow(dead_code)]

/// The multiplier from `MEG_EXAMPLE_SCALE` (default 1.0; unparsable → 1.0).
pub fn example_scale() -> f64 {
    std::env::var("MEG_EXAMPLE_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0)
}

/// Scales a nominal size, never dropping below `floor`.
pub fn scaled(n: usize, floor: usize) -> usize {
    ((n as f64 * example_scale()) as usize).max(floor)
}

/// Like [`scaled`], rounded down to an even value (for models that need an
/// even node count, e.g. the rotating bridge).
pub fn scaled_even(n: usize, floor: usize) -> usize {
    scaled(n, floor) & !1
}
