//! Quickstart: build a stationary edge-MEG and a stationary geometric-MEG,
//! flood both, and compare the measured flooding times with the paper's
//! closed-form bound shapes.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use meg::prelude::*;

#[path = "support/scale.rs"]
mod support;
use support::scaled;

fn main() {
    let seed = 2009;

    // ----------------------------------------------------------------- edge
    // Edge-MEG M(n, p, q): every potential edge is a two-state birth/death
    // chain. We fix the stationary edge probability p̂ just above the
    // connectivity threshold c·log n / n.
    let n = scaled(2_000, 200);
    let p_hat = 3.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
    println!(
        "edge-MEG: n = {n}, p̂ = {p_hat:.5}, p = {:.6}, q = {:.3}",
        params.p, params.q
    );
    println!(
        "  regime: {:?}",
        spec::edge_regime(n, p_hat, spec::DEFAULT_THRESHOLD_CONSTANT)
    );

    let mut edge_meg = SparseEdgeMeg::stationary(params, seed);
    let result = flood(&mut edge_meg, 0, 100_000);
    let time = result
        .flooding_time()
        .expect("connected regime: flooding completes");
    let bounds = params.bounds();
    println!("  measured flooding time : {time} rounds");
    println!("  Theorem 4.3 upper shape: {:.2}", bounds.upper_shape());
    println!("  Theorem 4.4 lower bound: {:.2}", bounds.lower());
    println!("  informed-per-round     : {:?}", result.informed_per_round);

    // ------------------------------------------------------------ geometric
    // Geometric-MEG G(n, r, R, ε): n mobile stations on a √n × √n square,
    // transmission radius R above the connectivity threshold c√(log n),
    // move radius r = R/2 (so Corollary 3.6 applies and flooding is Θ(√n/R)).
    let n_geo = scaled(1_500, 200);
    let radius = 2.0 * (n_geo as f64).ln().sqrt();
    let move_radius = radius / 2.0;
    let geo_params = GeometricMegParams::new(n_geo, move_radius, radius);
    println!();
    println!(
        "geometric-MEG: n = {n_geo}, R = {radius:.2}, r = {move_radius:.2}, square side = {:.1}",
        geo_params.side()
    );
    println!(
        "  regime: {:?}",
        spec::geometric_regime(n_geo, radius, move_radius, spec::DEFAULT_THRESHOLD_CONSTANT)
    );

    let mut geo_meg = GeometricMeg::from_params(geo_params, seed);
    let result = flood(&mut geo_meg, 0, 100_000);
    let time = result
        .flooding_time()
        .expect("connected regime: flooding completes");
    let bounds = GeometricBounds::new(n_geo, radius, move_radius);
    println!("  measured flooding time : {time} rounds");
    println!("  Theorem 3.4 upper shape: {:.2}", bounds.upper_shape());
    println!("  Theorem 3.5 lower bound: {:.2}", bounds.lower());

    // --------------------------------------------------------------- static
    // The headline of the paper: with r = O(R) mobility barely matters —
    // flooding time is about the diameter of a static stationary snapshot.
    let snapshot = meg::geometric::snapshot::sample_paper_snapshot(
        geo_params,
        &mut meg::stats::seeds::labeled_rng(seed, "quickstart-static"),
    );
    let static_flooding = flood_static(&snapshot.graph, 0);
    match static_flooding.flooding_time() {
        Some(t) => println!("  static snapshot flooding (≈ diameter): {t} rounds"),
        None => println!("  static snapshot was disconnected (rare at this R)"),
    }
}
