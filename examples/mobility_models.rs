//! Comparing mobility models: the paper proves its geometric-MEG bounds for
//! the grid random walk, and argues the same technique covers any model whose
//! stationary position distribution is (almost) uniform — random waypoint on a
//! torus, random direction with reflection (billiard), walkers on a toroidal
//! grid.
//!
//! This example measures, for each model:
//! * how uniform its stationary occupancy actually is (TV distance and max/min
//!   cell-occupancy ratio, the quantity Claim 1 controls), and
//! * the flooding time of the induced geometric-MEG,
//!
//! and shows they all behave alike.
//!
//! Run with:
//! ```text
//! cargo run --release --example mobility_models
//! ```

use meg::mobility::stationary::measure_uniformity;
use meg::prelude::*;
use meg::stats::table::fmt_f64;

fn flooding_time_with<M: Mobility>(model: M, radius: f64, seed: u64) -> Option<u64> {
    let mut meg = GeometricMeg::new(model, radius, seed);
    flood(&mut meg, 0, 100_000).flooding_time()
}

#[path = "support/scale.rs"]
mod support;
use support::scaled;

fn main() {
    let n = scaled(1_000, 150);
    let side = (n as f64).sqrt();
    let radius = 2.0 * (n as f64).ln().sqrt();
    let move_radius = radius / 2.0;
    let seed = 1234;
    let mut rng = meg::stats::seeds::labeled_rng(seed, "mobility-models");

    println!("n = {n}, square/torus side = {side:.1}, transmission radius R = {radius:.2}, move radius r = {move_radius:.2}\n");

    let mut table = Table::new(
        "Stationary uniformity and flooding time by mobility model",
        &[
            "model",
            "TV distance from uniform",
            "max/min cell occupancy",
            "flooding time",
        ],
    );

    // The paper's grid random walk (reflecting square).
    let grid = GridWalk::new(
        meg::mobility::grid_walk::GridWalkParams {
            n,
            side,
            move_radius,
            resolution: 1.0,
        },
        &mut rng,
    );
    let mut grid_probe = grid.clone();
    let report = measure_uniformity(&mut grid_probe, 4, 5, &mut rng);
    table.push_row(&[
        "grid random walk (paper)".to_string(),
        fmt_f64(report.tv_distance),
        fmt_f64(report.max_min_ratio),
        flooding_time_with(grid, radius, seed).map_or("-".into(), |t| t.to_string()),
    ]);

    // Walkers on a toroidal grid.
    let walkers = TorusWalkers::new(n, side, move_radius, 1.0, &mut rng);
    let mut walkers_probe = walkers.clone();
    let report = measure_uniformity(&mut walkers_probe, 4, 5, &mut rng);
    table.push_row(&[
        "walkers on toroidal grid".to_string(),
        fmt_f64(report.tv_distance),
        fmt_f64(report.max_min_ratio),
        flooding_time_with(walkers, radius, seed + 1).map_or("-".into(), |t| t.to_string()),
    ]);

    // Random waypoint on a torus.
    let waypoint = RandomWaypoint::new(n, side, move_radius / 2.0, move_radius, &mut rng);
    let mut waypoint_probe = waypoint.clone();
    let report = measure_uniformity(&mut waypoint_probe, 4, 5, &mut rng);
    table.push_row(&[
        "random waypoint on torus".to_string(),
        fmt_f64(report.tv_distance),
        fmt_f64(report.max_min_ratio),
        flooding_time_with(waypoint, radius, seed + 2).map_or("-".into(), |t| t.to_string()),
    ]);

    // Random direction with reflection (billiard).
    let billiard = Billiard::new(n, side, move_radius / 2.0, move_radius, 0.1, &mut rng);
    let mut billiard_probe = billiard.clone();
    let report = measure_uniformity(&mut billiard_probe, 4, 5, &mut rng);
    table.push_row(&[
        "random direction / billiard".to_string(),
        fmt_f64(report.tv_distance),
        fmt_f64(report.max_min_ratio),
        flooding_time_with(billiard, radius, seed + 3).map_or("-".into(), |t| t.to_string()),
    ]);

    println!("{}", table.render_ascii());
    println!(
        "Reading: every model keeps its nodes (almost) uniformly spread, so the induced\n\
         geometric-MEGs all flood in about the same Θ(√n/R) number of rounds — the\n\
         uniformity property is the only thing the paper's expansion argument needs."
    );
}
