//! Workspace-level integration tests for the scenario engine: a tiny built-in
//! scenario runs end-to-end through the facade, the JSON-lines schema is
//! stable, and the acceptance contract (both families, ≥2 protocols, seed
//! determinism, all three formats) holds.

use meg::engine::harness::render_scenario;
use meg::engine::json::Json;
use meg::engine::sink::CSV_HEADER;
use meg::engine::{builtin, builtin_names, run_scenario, OutputFormat, Scenario};

/// The tiny scenario used throughout: `quick_smoke` shrunk further.
fn smoke() -> Scenario {
    builtin("quick_smoke").expect("builtin exists").scaled(0.5)
}

#[test]
fn builtins_cover_the_acceptance_matrix() {
    let names = builtin_names();
    for required in [
        "geo_vs_radius",
        "edge_vs_n",
        "mobility_models",
        "protocol_variants",
    ] {
        assert!(names.contains(&required), "missing builtin `{required}`");
    }
    // Across the registry: both MEG families and at least two protocols.
    let scenarios: Vec<Scenario> = names.iter().map(|n| builtin(n).unwrap()).collect();
    assert!(scenarios.iter().any(|s| s
        .substrates
        .iter()
        .any(|sub| sub.label().starts_with("edge"))));
    assert!(scenarios.iter().any(|s| s
        .substrates
        .iter()
        .any(|sub| sub.label().starts_with("geo"))));
    let protocols: std::collections::HashSet<String> = scenarios
        .iter()
        .flat_map(|s| s.protocols.iter().map(|p| p.label()))
        .collect();
    assert!(protocols.len() >= 2);
}

#[test]
fn tiny_scenario_end_to_end_json_lines_schema() {
    let rendered = render_scenario(&smoke(), 2009, OutputFormat::Json).expect("runs");
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines.len(), smoke().num_cells(), "one JSON line per cell");

    for line in lines {
        let row = Json::parse(line).expect("each line is a complete JSON document");
        // Schema: required keys with the right shapes.
        for key in [
            "scenario",
            "family",
            "substrate",
            "protocol",
            "regime",
            "seed",
        ] {
            assert!(
                row.get(key).and_then(Json::as_str).is_some(),
                "`{key}` must be a string in {line}"
            );
        }
        for key in ["cell", "trials", "completion_rate", "mean_messages"] {
            assert!(
                row.get(key).and_then(Json::as_f64).is_some(),
                "`{key}` must be a number in {line}"
            );
        }
        // Rounds summary: numbers when any trial completed, nulls otherwise.
        let completed = row.get("completion_rate").unwrap().as_f64().unwrap() > 0.0;
        for key in [
            "mean_rounds",
            "min_rounds",
            "max_rounds",
            "std_rounds",
            "median_rounds",
            "var_rounds",
        ] {
            let v = row.get(key).unwrap_or(&Json::Null);
            if completed {
                assert!(v.as_f64().is_some(), "`{key}` must be numeric in {line}");
            } else {
                assert_eq!(v, &Json::Null);
            }
        }
        // completed_trials makes the row JSON a lossless Row transport.
        assert!(
            row.get("completed_trials").and_then(Json::as_f64).is_some(),
            "`completed_trials` must be a number in {line}"
        );
        // params is an object of numbers including n.
        let params = row.get("params").expect("params present");
        assert!(params.get("n").and_then(Json::as_f64).is_some());
        // the seed string is a valid u64
        row.get("seed")
            .unwrap()
            .as_str()
            .unwrap()
            .parse::<u64>()
            .expect("seed round-trips as u64");
    }
}

#[test]
fn same_seed_means_identical_output_across_formats() {
    let s = smoke();
    for format in [OutputFormat::Table, OutputFormat::Json, OutputFormat::Csv] {
        let a = render_scenario(&s, 42, format).unwrap();
        let b = render_scenario(&s, 42, format).unwrap();
        assert_eq!(a, b, "format {format:?} must be deterministic in the seed");
        assert!(!a.is_empty());
    }
    // Different seeds give different cell seeds (and thus different rows).
    let rows_a = run_scenario(&s, 42).unwrap();
    let rows_b = run_scenario(&s, 43).unwrap();
    assert_ne!(
        rows_a.iter().map(|r| r.seed).collect::<Vec<_>>(),
        rows_b.iter().map(|r| r.seed).collect::<Vec<_>>()
    );
}

#[test]
fn csv_format_has_stable_header_and_row_count() {
    let rendered = render_scenario(&smoke(), 7, OutputFormat::Csv).unwrap();
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines[0], CSV_HEADER);
    assert_eq!(lines.len(), 1 + smoke().num_cells());
    let cols = CSV_HEADER.split(',').count();
    for line in &lines[1..] {
        assert_eq!(line.split(',').count(), cols, "ragged CSV row: {line}");
    }
}

#[test]
fn every_builtin_scenario_round_trips_through_json() {
    for name in builtin_names() {
        let s = builtin(name).unwrap();
        let back = Scenario::parse(&s.to_json().render()).unwrap();
        assert_eq!(back, s, "builtin `{name}` must round-trip");
    }
}

#[test]
fn sharded_execution_is_reachable_through_the_facade() {
    use meg::engine::dist::{run_sharded, DistOptions, ShardSpec};
    let s = smoke();
    let reference: Vec<String> = run_scenario(&s, 2009)
        .unwrap()
        .iter()
        .map(|r| r.to_json().render())
        .collect();
    let mut lines = Vec::new();
    for label in ["0/2", "1/2"] {
        let opts = DistOptions {
            shard: ShardSpec::parse(label).unwrap(),
            ..DistOptions::default()
        };
        let report = run_sharded(&s, 2009, &opts, |_, line| lines.push(line.to_string())).unwrap();
        assert!(report.complete);
    }
    lines.sort_by_key(|l| {
        Json::parse(l)
            .unwrap()
            .get("cell")
            .and_then(Json::as_f64)
            .unwrap() as usize
    });
    assert_eq!(
        lines, reference,
        "2-way shard must partition the row stream"
    );
}

#[test]
fn scenarios_cover_both_families_with_completed_runs() {
    let rows = run_scenario(&smoke(), 1).unwrap();
    let edge_ok = rows
        .iter()
        .any(|r| r.family == "edge" && r.completion_rate > 0.0);
    let geo_ok = rows
        .iter()
        .any(|r| r.family == "geometric" && r.completion_rate > 0.0);
    assert!(edge_ok, "edge family should complete above threshold");
    assert!(geo_ok, "geometric family should complete above threshold");
    let protocols: std::collections::HashSet<&str> =
        rows.iter().map(|r| r.protocol.as_str()).collect();
    assert!(protocols.len() >= 2);
}
