//! Cross-crate integration tests: the full pipeline from model construction
//! (meg-geometric / meg-edge) through the flooding engine (meg-core) to the
//! closed-form bounds and regime predicates.

use meg::prelude::*;

const ROUND_BUDGET: u64 = 200_000;

#[test]
fn stationary_edge_meg_respects_both_bounds() {
    // Sparse but connected regime; Theorem 4.3 / 4.4 say the flooding time is
    // Θ(log n / log(np̂)). We check the measured value sits between the lower
    // bound and a generous constant times the upper shape.
    let n = 800usize;
    let p_hat = 4.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
    let bounds = params.bounds();
    for seed in 0..3u64 {
        let mut meg = SparseEdgeMeg::stationary(params, seed);
        let t = flood(&mut meg, 0, ROUND_BUDGET)
            .flooding_time()
            .expect("connected regime floods") as f64;
        assert!(
            t >= bounds.lower() * 0.99,
            "seed {seed}: measured {t} below lower bound {}",
            bounds.lower()
        );
        assert!(
            t <= 6.0 * bounds.upper_shape() + 6.0,
            "seed {seed}: measured {t} far above upper shape {}",
            bounds.upper_shape()
        );
    }
}

#[test]
fn stationary_geometric_meg_respects_both_bounds() {
    let n = 500usize;
    let radius = 2.0 * (n as f64).ln().sqrt();
    let move_radius = radius / 2.0;
    let params = GeometricMegParams::new(n, move_radius, radius);
    let bounds = GeometricBounds::new(n, radius, move_radius);
    for seed in 0..2u64 {
        let mut meg = GeometricMeg::from_params(params, seed);
        let t = flood(&mut meg, 0, ROUND_BUDGET)
            .flooding_time()
            .expect("connected regime floods") as f64;
        assert!(
            t >= bounds.lower() * 0.99,
            "seed {seed}: measured {t} below lower bound {}",
            bounds.lower()
        );
        assert!(
            t <= 8.0 * bounds.upper_shape() + 8.0,
            "seed {seed}: measured {t} far above upper shape {}",
            bounds.upper_shape()
        );
    }
}

#[test]
fn denser_networks_flood_faster_on_average() {
    // Edge-MEG: quadruple the stationary edge probability and flooding should
    // not get slower (averaged over a few seeds).
    let n = 600usize;
    let base = 3.0 * (n as f64).ln() / n as f64;
    let mean_time = |p_hat: f64| -> f64 {
        let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);
        let mut total = 0.0;
        let trials = 3;
        for seed in 0..trials {
            let mut meg = SparseEdgeMeg::stationary(params, seed);
            total += flood(&mut meg, 0, ROUND_BUDGET).flooding_time().unwrap() as f64;
        }
        total / trials as f64
    };
    let sparse = mean_time(base);
    let dense = mean_time(base * 8.0);
    assert!(
        dense <= sparse,
        "denser network should flood at least as fast: sparse {sparse}, dense {dense}"
    );
}

#[test]
fn larger_radius_floods_faster_in_geometric_meg() {
    let n = 500usize;
    let threshold = spec::geometric_connectivity_threshold(n, spec::DEFAULT_THRESHOLD_CONSTANT);
    let mean_time = |radius: f64| -> f64 {
        let params = GeometricMegParams::new(n, radius / 2.0, radius);
        let trials = 2;
        let mut total = 0.0;
        for seed in 0..trials {
            let mut meg = GeometricMeg::from_params(params, seed);
            total += flood(&mut meg, 0, ROUND_BUDGET).flooding_time().unwrap() as f64;
        }
        total / trials as f64
    };
    let slow = mean_time(threshold);
    let fast = mean_time(threshold * 3.0);
    assert!(
        fast <= slow,
        "larger transmission radius should not slow flooding: R=thr {slow}, R=3thr {fast}"
    );
}

#[test]
fn stationary_start_beats_empty_start_when_links_are_born_rarely() {
    let n = 400usize;
    let p_hat = 5.0 * (n as f64).ln() / n as f64;
    let q = 0.005;
    let params = EdgeMegParams::with_stationary(n, p_hat, q);
    let mut warm = SparseEdgeMeg::stationary(params, 10);
    let warm_time = flood(&mut warm, 0, ROUND_BUDGET).flooding_time().unwrap();
    let mut cold = SparseEdgeMeg::new(params, InitialDistribution::Empty, 11);
    let cold_time = flood(&mut cold, 0, ROUND_BUDGET).flooding_time().unwrap();
    assert!(
        cold_time >= 3 * warm_time,
        "cold start ({cold_time}) should be much slower than warm start ({warm_time})"
    );
}

#[test]
fn adversarial_star_defeats_diameter_based_reasoning_at_scale() {
    let n = 300usize;
    let mut star = RotatingStar::new(n, 0);
    let worst = star.worst_source();
    let t = flood(&mut star, worst, 10 * n as u64)
        .flooding_time()
        .unwrap();
    assert_eq!(t, (n - 1) as u64);
    // Meanwhile a geometric-MEG of the same size with a healthy radius floods
    // in a tiny fraction of that.
    let radius = 2.0 * (n as f64).ln().sqrt();
    let mut geo = GeometricMeg::from_params(GeometricMegParams::new(n, radius / 2.0, radius), 1);
    let geo_t = flood(&mut geo, 0, ROUND_BUDGET).flooding_time().unwrap();
    assert!(geo_t * 5 < t);
}

#[test]
fn protocol_variants_cover_the_same_evolving_graphs() {
    let n = 300usize;
    let p_hat = 5.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.3);
    let mut rng = meg::stats::seeds::labeled_rng(7, "integration-protocols");

    let mut meg = SparseEdgeMeg::stationary(params, 0);
    let flood_run = probabilistic_flood(&mut meg, 0, 1.0, 10_000, &mut rng);
    assert!(flood_run.completed);

    let mut meg = SparseEdgeMeg::stationary(params, 1);
    let gossip_run = push_pull_gossip(&mut meg, 0, 10_000, &mut rng);
    assert!(gossip_run.completed);
    assert!(gossip_run.rounds >= flood_run.rounds);

    let mut meg = SparseEdgeMeg::stationary(params, 2);
    let pars_run = parsimonious_flood(&mut meg, 0, 3, 10_000);
    assert!(pars_run.completed);
}
