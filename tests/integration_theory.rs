//! Cross-crate integration tests focused on the theoretical machinery: the
//! general Theorem 2.5 pipeline (measured expansion → evaluated bound →
//! measured flooding), stationarity preservation, and regime classification.

use meg::core::analysis::{measure_expansion_sequence, ExpansionMeasurement};
use meg::graph::expansion::SamplingStrategy;
use meg::graph::{degree, Graph};
use meg::prelude::*;

#[test]
fn general_theorem_pipeline_bounds_measured_flooding_for_edge_meg() {
    let n = 500usize;
    let p_hat = 5.0 * (n as f64).ln() / n as f64;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.5);

    // Measure an empirical expander sequence from a few snapshots.
    let mut probe = SparseEdgeMeg::stationary(params, 99);
    let mut rng = meg::stats::seeds::labeled_rng(3, "theory-edge");
    let options = ExpansionMeasurement {
        snapshots: 3,
        samples_per_size: 25,
        strategy: SamplingStrategy::Mixed,
    };
    let seq = measure_expansion_sequence(&mut probe, options, &mut rng).unwrap();
    let bound = seq.flooding_bound();

    // Independent flooding runs must respect the evaluated bound.
    for seed in 0..3u64 {
        let mut meg = SparseEdgeMeg::stationary(params, seed);
        let t = flood(&mut meg, 0, 100_000).flooding_time().unwrap() as f64;
        assert!(
            bound >= t,
            "seed {seed}: Theorem 2.5 bound {bound} must dominate measured flooding {t}"
        );
    }
    // And the bound should be useful (within a modest factor) for this
    // expander-like family.
    let mut meg = SparseEdgeMeg::stationary(params, 1_000);
    let t = flood(&mut meg, 0, 100_000).flooding_time().unwrap() as f64;
    assert!(
        bound <= 30.0 * t.max(1.0),
        "bound {bound} uselessly loose vs {t}"
    );
}

#[test]
fn general_theorem_pipeline_bounds_measured_flooding_for_geometric_meg() {
    let n = 400usize;
    let radius = 2.0 * (n as f64).ln().sqrt();
    let params = GeometricMegParams::new(n, radius / 2.0, radius);

    let mut probe = GeometricMeg::from_params(params, 77);
    let mut rng = meg::stats::seeds::labeled_rng(4, "theory-geo");
    let options = ExpansionMeasurement {
        snapshots: 3,
        samples_per_size: 25,
        strategy: SamplingStrategy::Mixed,
    };
    let seq = measure_expansion_sequence(&mut probe, options, &mut rng).unwrap();
    let bound = seq.flooding_bound();

    for seed in 0..2u64 {
        let mut meg = GeometricMeg::from_params(params, seed);
        let t = flood(&mut meg, 0, 100_000).flooding_time().unwrap() as f64;
        assert!(
            bound >= t,
            "seed {seed}: Theorem 2.5 bound {bound} must dominate measured flooding {t}"
        );
    }
}

#[test]
fn edge_meg_snapshots_stay_stationary_over_time() {
    // The marginal law of every snapshot of a stationary edge-MEG is G(n, p̂):
    // the mean degree must not drift over a long run.
    let n = 400usize;
    let p_hat = 0.03;
    let params = EdgeMegParams::with_stationary(n, p_hat, 0.2);
    let mut meg = SparseEdgeMeg::stationary(params, 5);
    let expected = (n as f64 - 1.0) * p_hat;
    let mut early = 0.0;
    let mut late = 0.0;
    for t in 0..60 {
        let mean = degree::degree_stats(meg.advance()).unwrap().mean;
        if t < 10 {
            early += mean / 10.0;
        }
        if t >= 50 {
            late += mean / 10.0;
        }
    }
    assert!(
        (early - expected).abs() < 0.25 * expected,
        "early mean degree {early}"
    );
    assert!(
        (late - expected).abs() < 0.25 * expected,
        "late mean degree {late}"
    );
}

#[test]
fn geometric_meg_snapshots_stay_connected_over_time_above_threshold() {
    let n = 400usize;
    let radius = 2.2 * (n as f64).ln().sqrt();
    let params = GeometricMegParams::new(n, radius / 2.0, radius);
    let mut meg = GeometricMeg::from_params(params, 8);
    let mut connected = 0usize;
    let steps = 20usize;
    for _ in 0..steps {
        if meg::graph::connectivity::is_connected(meg.advance()) {
            connected += 1;
        }
    }
    assert!(
        connected >= steps - 1,
        "snapshots above the connectivity threshold should stay connected ({connected}/{steps})"
    );
}

#[test]
fn regime_predicates_agree_with_bound_helpers() {
    let n = 10_000usize;
    // Geometric: a radius inside the tight window.
    let radius = 3.0 * spec::geometric_connectivity_threshold(n, 1.0);
    assert_eq!(
        spec::geometric_regime(n, radius, radius / 2.0, 1.0),
        spec::GeometricRegime::Tight
    );
    let b = GeometricBounds::new(n, radius, radius / 2.0);
    assert!(b.lower() <= b.upper(1.0));

    // Edge: p̂ inside the tight window.
    let p_hat = 3.0 * spec::edge_connectivity_threshold(n, 1.0);
    assert_eq!(spec::edge_regime(n, p_hat, 1.0), spec::EdgeRegime::Tight);
    let b = EdgeBounds::new(n, p_hat);
    assert!(b.lower() <= b.upper(1.0));
}

#[test]
fn static_snapshot_flooding_matches_dynamic_flooding_when_mobility_is_frozen() {
    // With a move radius below the grid resolution the walk cannot move, so
    // flooding on the "dynamic" graph equals flooding on its first snapshot.
    let n = 300usize;
    let radius = 2.0 * (n as f64).ln().sqrt();
    let params = GeometricMegParams {
        n,
        move_radius: 0.4,
        transmission_radius: radius,
        resolution: 1.0,
    };
    let mut meg = GeometricMeg::from_params(params, 21);
    let first_snapshot = meg.current_snapshot().to_adjacency();
    let static_time = flood_static(&first_snapshot, 0).flooding_time();
    let dynamic_time = flood(&mut meg, 0, 100_000).flooding_time();
    assert_eq!(static_time, dynamic_time);
}

#[test]
fn frozen_two_state_chain_preserves_the_whole_graph() {
    let params = EdgeMegParams::new(60, 0.0, 0.0);
    let mut meg = DenseEdgeMeg::stationary(params, 17);
    let first = meg.advance().clone();
    for _ in 0..5 {
        let next = meg.advance();
        assert_eq!(next.num_edges(), first.num_edges());
    }
}
