//! Property-based tests (proptest) on the core invariants of the workspace:
//! node-set algebra, flooding monotonicity and its equivalence with BFS on
//! static graphs, expander-sequence bound validity, the two-state chain's
//! stationary law, and the pair-index bijection used by the sparse engines.

use meg::core::expansion::ExpanderSequence;
use meg::graph::{bfs, generators, AdjacencyList, Graph, NodeSet};
use meg::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: a random edge list over `n` nodes.
fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..(3 * n)))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn nodeset_matches_hashset_semantics(
        universe in 1usize..300,
        ops in proptest::collection::vec((0u32..300, proptest::bool::ANY), 0..200),
    ) {
        let mut set = NodeSet::new(universe);
        let mut reference: HashSet<u32> = HashSet::new();
        for (node, insert) in ops {
            let node = node % universe as u32;
            if insert {
                prop_assert_eq!(set.insert(node), reference.insert(node));
            } else {
                prop_assert_eq!(set.remove(node), reference.remove(&node));
            }
        }
        prop_assert_eq!(set.len(), reference.len());
        let collected: HashSet<u32> = set.iter().collect();
        prop_assert_eq!(collected, reference.clone());
        // complement partitions the universe
        let complement = set.complement();
        prop_assert_eq!(set.len() + complement.len(), universe);
        prop_assert_eq!(set.intersection_len(&complement), 0);
    }

    #[test]
    fn nodeset_union_and_intersection_are_consistent(
        universe in 1usize..200,
        a in proptest::collection::vec(0u32..200, 0..100),
        b in proptest::collection::vec(0u32..200, 0..100),
    ) {
        let a: Vec<u32> = a.into_iter().map(|x| x % universe as u32).collect();
        let b: Vec<u32> = b.into_iter().map(|x| x % universe as u32).collect();
        let sa = NodeSet::from_iter(universe, a.iter().copied());
        let sb = NodeSet::from_iter(universe, b.iter().copied());
        let mut union = sa.clone();
        union.union_with(&sb);
        let mut inter = sa.clone();
        inter.intersect_with(&sb);
        // inclusion–exclusion
        prop_assert_eq!(union.len() + inter.len(), sa.len() + sb.len());
        prop_assert!(sa.is_subset_of(&union));
        prop_assert!(inter.is_subset_of(&sa));
        prop_assert!(inter.is_subset_of(&sb));
    }

    #[test]
    fn static_flooding_equals_bfs_eccentricity((n, edges) in edges_strategy(40), source_raw in 0u32..40) {
        let g = AdjacencyList::from_edges(n, edges);
        let source = source_raw % n as u32;
        let result = flood_static(&g, source);
        let distances = bfs::distances(&g, source);
        let reachable = distances.iter().filter(|&&d| d != bfs::UNREACHABLE).count();
        let ecc = distances.iter().filter(|&&d| d != bfs::UNREACHABLE).max().copied().unwrap_or(0);
        // informed set == reachable set
        prop_assert_eq!(result.informed.len(), reachable);
        if reachable == n {
            prop_assert_eq!(result.flooding_time(), Some(ecc as u64));
        } else {
            prop_assert_eq!(result.flooding_time(), None);
        }
        // monotone growth of the informed count
        for w in result.informed_per_round.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn flooding_on_dynamic_graphs_is_monotone_and_bounded(
        n in 2usize..30,
        p in 0.01f64..0.5,
        q in 0.01f64..0.5,
        seed in 0u64..1000,
    ) {
        let params = EdgeMegParams::new(n, p, q);
        let mut meg = DenseEdgeMeg::stationary(params, seed);
        let budget = 200u64;
        let result = flood(&mut meg, 0, budget);
        prop_assert!(result.rounds <= budget);
        prop_assert!(!result.informed.is_empty());
        prop_assert!(result.informed.contains(0));
        for w in result.informed_per_round.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        if result.outcome == FloodingOutcome::Completed {
            prop_assert_eq!(result.informed.len(), n);
            prop_assert_eq!(result.rounds as usize + 1, result.informed_per_round.len());
        }
    }

    #[test]
    fn expander_sequence_bound_dominates_flooding_on_erdos_renyi(
        n in 20usize..80,
        seed in 0u64..500,
    ) {
        // Dense G(n, p): expansion measured exactly at every size is a valid
        // input to Lemma 2.4, whose bound must dominate the true flooding time.
        let mut rng = meg::stats::seeds::trial_rng(seed, 0);
        let g = generators::erdos_renyi(n, 0.4, &mut rng);
        if meg::graph::connectivity::is_connected(&g) {
            // exact worst expansion at geometric sizes
            let mut hs = Vec::new();
            let mut ks = Vec::new();
            let mut h = 1usize;
            let mut running = f64::INFINITY;
            while h <= n / 2 {
                let k = meg::graph::expansion::min_expansion_sampled(
                    &g, h, 40, meg::graph::expansion::SamplingStrategy::Mixed, &mut rng);
                running = running.min(k);
                hs.push(h);
                ks.push(running);
                if h == n / 2 { break; }
                h = (h * 2).min(n / 2);
            }
            let seq = ExpanderSequence::new(n, hs, ks).unwrap();
            let bound = seq.flooding_bound();
            let measured = flood_static(&g, 0).flooding_time().unwrap() as f64;
            prop_assert!(bound >= measured, "bound {} vs measured {}", bound, measured);
        }
    }

    #[test]
    fn two_state_chain_multi_step_probabilities_are_probabilities(
        p in 0.0f64..=1.0,
        q in 0.0f64..=1.0,
        t in 0u32..50,
    ) {
        let chain = TwoStateChain::new(p, q);
        for state in [false, true] {
            let prob = chain.prob_present_after(state, t);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&prob), "prob {}", prob);
        }
        let (pi0, pi1) = chain.stationary();
        prop_assert!((pi0 + pi1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pair_index_bijection_roundtrips(n in 2u64..200, a in 0u64..200, b in 0u64..200) {
        let a = a % n;
        let b = b % n;
        if a != b {
            let idx = generators::index_of_pair(n, a, b);
            prop_assert!(idx < n * (n - 1) / 2);
            let (x, y) = generators::pair_from_index(n, idx);
            prop_assert_eq!((x, y), (a.min(b), a.max(b)));
        }
    }

    #[test]
    fn erdos_renyi_generator_produces_simple_graphs(n in 1usize..120, p in 0.0f64..1.0, seed in 0u64..200) {
        let mut rng = meg::stats::seeds::trial_rng(seed, 1);
        let g = generators::erdos_renyi(n, p, &mut rng);
        prop_assert_eq!(g.num_nodes(), n);
        // simple graph: no self loops, no duplicate edges
        let mut seen = HashSet::new();
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!((v as usize) < n);
            prop_assert!(seen.insert((u, v)));
        }
        prop_assert_eq!(seen.len(), g.num_edges());
    }

    #[test]
    fn out_neighborhood_never_intersects_the_set(
        (n, edges) in edges_strategy(50),
        members in proptest::collection::vec(0u32..50, 1..20),
    ) {
        let g = AdjacencyList::from_edges(n, edges);
        let set = NodeSet::from_iter(n, members.into_iter().map(|m| m % n as u32));
        let nb = meg::graph::out_neighborhood(&g, &set);
        prop_assert_eq!(nb.intersection_len(&set), 0);
        // every reported neighbor really has an edge into the set
        for v in nb.iter() {
            let touches = g.neighbors_vec(v).iter().any(|&u| set.contains(u));
            prop_assert!(touches);
        }
    }
}
