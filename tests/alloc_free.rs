//! The no-allocation invariant of the snapshot pipeline, asserted with a
//! counting global allocator.
//!
//! `EvolvingGraph::advance()` fills a model-owned flat CSR buffer
//! ([`meg::graph::SnapshotBuf`]) in place. After a warm-up phase — during
//! which the buffer and workspace capacities grow to the run's high-water
//! mark — stepping the dense-edge and geometric evolving graphs must perform
//! **zero** heap allocations (the acceptance criterion of the
//! allocation-free snapshot pipeline refactor). Both stepping modes are
//! covered: the per-pair reference path — which now steps 64 chains per
//! round through the word-packed [`meg::graph::PairBits`] state (fixed words
//! reused in place) — and the `Stepping::Transitions` skip-sampling path,
//! whose per-round work is a `SnapshotBuf::apply_delta` edit rather than a
//! rebuild — raw delta rounds (including the slack-exhaustion rebuild
//! fallback) are measured directly as well. The geometric bucket scan runs
//! the fixed-lane compress kernel of `meg-geometric::radius_graph` over both
//! metrics: the square-region section covers the Euclidean lanes and a
//! torus-walkers section covers the wrap-around lanes (the two metric
//! monomorphisations are separate code paths, so each gets its own bar). The
//! sparse engine's *per-pair* path stays out of scope (its alive-set
//! `BTreeSet` allocates per birth by design); its transitions path keeps the
//! alive set in a flat reused `Vec` and is held to the zero-allocation bar.
//!
//! The test counts `alloc` / `realloc` / `alloc_zeroed` calls around the
//! measured loop on the test's own single thread; nothing else runs
//! concurrently in this integration-test binary (one `#[test]`), so a
//! non-zero delta is attributable to `advance()`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn advance_is_allocation_free_after_warmup_on_dense_and_geometric_paths() {
    use meg::core::evolving::EvolvingGraph;
    use meg::edge::{DenseEdgeMeg, EdgeMegParams};
    use meg::geometric::{GeometricMeg, GeometricMegParams};
    use meg::graph::Graph;

    // --- dense edge-MEG ---------------------------------------------------
    let params = EdgeMegParams::with_stationary(256, 0.08, 0.4);
    let mut dense = DenseEdgeMeg::stationary(params, 7);
    // Warm-up: let every buffer reach its high-water capacity. The snapshot
    // size fluctuates around the stationary level, so a generous warm-up
    // covers the edge-count peaks the measured window will see.
    for _ in 0..100 {
        dense.advance();
    }
    let (dense_allocs, dense_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += dense.advance().num_edges();
        }
        total
    });
    assert!(dense_edges > 0, "dense workload degenerated");
    assert_eq!(
        dense_allocs, 0,
        "dense advance() allocated {dense_allocs} times after warm-up"
    );

    // --- geometric-MEG (grid walk, square metric) -------------------------
    let params = GeometricMegParams::new(512, 1.5, 4.0);
    let mut geo = GeometricMeg::from_params(params, 11);
    for _ in 0..100 {
        geo.advance();
    }
    let (geo_allocs, geo_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += geo.advance().num_edges();
        }
        total
    });
    assert!(geo_edges > 0, "geometric workload degenerated");
    assert_eq!(
        geo_allocs, 0,
        "geometric advance() allocated {geo_allocs} times after warm-up"
    );

    // --- geometric-MEG (torus walkers, wrap-around metric) ----------------
    // The torus metric is a distinct monomorphisation of the lane-compress
    // scan kernel, so it earns its own zero-allocation window.
    use meg::mobility::TorusWalkers;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut walker_rng = StdRng::seed_from_u64(17);
    let side = (512f64).sqrt() * 1.5;
    let walkers = TorusWalkers::new(512, side, 1.5, 1.0, &mut walker_rng);
    let mut torus = GeometricMeg::new(walkers, 4.0, 17);
    for _ in 0..100 {
        torus.advance();
    }
    let (torus_allocs, torus_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += torus.advance().num_edges();
        }
        total
    });
    assert!(torus_edges > 0, "torus geometric workload degenerated");
    assert_eq!(
        torus_allocs, 0,
        "torus geometric advance() allocated {torus_allocs} times after warm-up"
    );

    // --- dense edge-MEG, transitions stepping (delta snapshot path) -------
    use meg::core::evolving::{InitialDistribution, Stepping};
    let params = EdgeMegParams::with_stationary(256, 0.08, 0.4);
    let mut fast = DenseEdgeMeg::with_stepping(
        params,
        InitialDistribution::Stationary,
        Stepping::Transitions,
        7,
    );
    for _ in 0..100 {
        fast.advance();
    }
    let (fast_allocs, fast_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += fast.advance().num_edges();
        }
        total
    });
    assert!(fast_edges > 0, "dense transitions workload degenerated");
    assert_eq!(
        fast_allocs, 0,
        "dense transitions advance() allocated {fast_allocs} times after warm-up"
    );

    // --- sparse edge-MEG, transitions stepping ----------------------------
    use meg::edge::SparseEdgeMeg;
    let params = EdgeMegParams::with_stationary(256, 0.03, 0.4);
    let mut sparse = SparseEdgeMeg::with_stepping(
        params,
        InitialDistribution::Stationary,
        Stepping::Transitions,
        13,
    );
    for _ in 0..100 {
        sparse.advance();
    }
    let (sparse_allocs, sparse_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += sparse.advance().num_edges();
        }
        total
    });
    assert!(sparse_edges > 0, "sparse transitions workload degenerated");
    assert_eq!(
        sparse_allocs, 0,
        "sparse transitions advance() allocated {sparse_allocs} times after warm-up"
    );

    // --- raw SnapshotBuf delta rounds -------------------------------------
    // A ring with slack 2, hammered with kill/revive delta rounds plus
    // slack-exhaustion rebuilds: after one warm-up rebuild (which sizes the
    // staging buffer), every delta round — in-place *and* fallback — must be
    // allocation-free.
    use meg::graph::SnapshotBuf;
    let n = 64u32;
    let mut buf = SnapshotBuf::new();
    buf.begin(n as usize);
    for u in 0..n {
        buf.push_edge(u.min((u + 1) % n), u.max((u + 1) % n));
    }
    buf.build_with_slack(2);
    let kill: Vec<(u32, u32)> = (0..n)
        .step_by(2)
        .map(|u| {
            let v = (u + 1) % n;
            (u.min(v), u.max(v))
        })
        .collect();
    // Three chords at one hub exceed its slack of 2 and trigger the rebuild
    // fallback; a second hub provides a fresh exhaustion for the measured
    // window.
    let chords_a: [(u32, u32); 3] = [(0, 4), (0, 8), (0, 12)];
    let chords_b: [(u32, u32); 3] = [(1, 5), (1, 9), (1, 13)];
    for _ in 0..4 {
        assert!(!buf.apply_delta(&[], &kill).is_rebuilt());
        assert!(!buf.apply_delta(&kill, &[]).is_rebuilt());
    }
    // Warm-up rebuild: exceeding the hub's slack must report `Rebuilt`.
    assert!(buf.apply_delta(&chords_a, &[]).is_rebuilt());
    let _ = buf.apply_delta(&[], &chords_a);
    let (delta_allocs, delta_edges) = allocations_during(|| {
        let mut total = 0usize;
        let mut rebuilds = 0usize;
        for _ in 0..100 {
            rebuilds += buf.apply_delta(&[], &kill).is_rebuilt() as usize;
            rebuilds += buf.apply_delta(&kill, &[]).is_rebuilt() as usize;
            total += buf.num_edges();
        }
        // Fallback rebuild, measured: the outcome must say so.
        rebuilds += buf.apply_delta(&chords_b, &[]).is_rebuilt() as usize;
        let _ = buf.apply_delta(&[], &chords_b);
        (total + buf.num_edges(), rebuilds)
    });
    let (delta_edges, delta_rebuilds) = delta_edges;
    assert!(delta_edges > 0, "delta workload degenerated");
    assert!(
        delta_rebuilds >= 1,
        "the chord burst must exhaust slack and report Rebuilt"
    );
    assert_eq!(
        delta_allocs, 0,
        "apply_delta allocated {delta_allocs} times after warm-up"
    );

    // --- recorder installed: observation must not allocate either ---------
    // The recorder's storage is entirely static: counters and gauges are
    // atomics, and span latencies land in fixed log2-bucket histograms
    // (`[u64; SPAN_HIST_BUCKETS]` per span), so with the recorder live the
    // counter adds, gauge samples, and span records on the advance() hot
    // paths must perform zero heap allocations. Reuses the already-warmed
    // dense and geometric models above — same loops, now observed.
    meg::obs::install();
    for _ in 0..5 {
        dense.advance();
        geo.advance();
    }
    let (observed_allocs, observed_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += dense.advance().num_edges();
            total += geo.advance().num_edges();
        }
        total
    });
    assert!(observed_edges > 0, "observed workload degenerated");
    assert_eq!(
        observed_allocs, 0,
        "advance() with the recorder installed allocated {observed_allocs} times"
    );
    let snap = meg::obs::snapshot();
    assert!(
        snap.counter("edge_births") > 0,
        "dense flips were not recorded"
    );
    assert!(
        snap.counter("bucket_scan_visits") > 0,
        "geometric bucket scans were not recorded"
    );
    assert!(
        snap.span("advance").is_some_and(|s| s.count >= 400),
        "advance spans were not recorded"
    );
    // The histogram must account for every recorded span — each of the 400+
    // observations above incremented exactly one bucket, at zero allocations
    // (the measured window covers the records; the buckets are static).
    let advance = snap.span("advance").unwrap();
    let hist_total: u64 = advance.hist.iter().sum();
    assert_eq!(
        hist_total, advance.count,
        "histogram bucket counts must sum to the span count"
    );
    // Percentiles come back as bucket midpoints, so bracket with a factor-2
    // tolerance on each side of the observed [min, max] range.
    let p50 = advance.percentile_ns(0.50);
    let p99 = advance.percentile_ns(0.99);
    assert!(
        advance.min_ns / 2 <= p50 && p50 <= p99 && p99 <= advance.max_ns.saturating_mul(2),
        "percentiles must be ordered and bracketed by the observed range \
         (min {} · p50 {p50} · p99 {p99} · max {})",
        advance.min_ns,
        advance.max_ns
    );
    meg::obs::uninstall();
}
