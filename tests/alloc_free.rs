//! The no-allocation invariant of the snapshot pipeline, asserted with a
//! counting global allocator.
//!
//! `EvolvingGraph::advance()` fills a model-owned flat CSR buffer
//! ([`meg::graph::SnapshotBuf`]) in place. After a warm-up phase — during
//! which the buffer and workspace capacities grow to the run's high-water
//! mark — stepping the dense-edge and geometric evolving graphs must perform
//! **zero** heap allocations (the acceptance criterion of the
//! allocation-free snapshot pipeline refactor). The sparse edge engine is
//! deliberately out of scope: its alive-set `BTreeSet` allocates per birth by
//! design.
//!
//! The test counts `alloc` / `realloc` / `alloc_zeroed` calls around the
//! measured loop on the test's own single thread; nothing else runs
//! concurrently in this integration-test binary (one `#[test]`), so a
//! non-zero delta is attributable to `advance()`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counter is a relaxed atomic.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn advance_is_allocation_free_after_warmup_on_dense_and_geometric_paths() {
    use meg::core::evolving::EvolvingGraph;
    use meg::edge::{DenseEdgeMeg, EdgeMegParams};
    use meg::geometric::{GeometricMeg, GeometricMegParams};
    use meg::graph::Graph;

    // --- dense edge-MEG ---------------------------------------------------
    let params = EdgeMegParams::with_stationary(256, 0.08, 0.4);
    let mut dense = DenseEdgeMeg::stationary(params, 7);
    // Warm-up: let every buffer reach its high-water capacity. The snapshot
    // size fluctuates around the stationary level, so a generous warm-up
    // covers the edge-count peaks the measured window will see.
    for _ in 0..100 {
        dense.advance();
    }
    let (dense_allocs, dense_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += dense.advance().num_edges();
        }
        total
    });
    assert!(dense_edges > 0, "dense workload degenerated");
    assert_eq!(
        dense_allocs, 0,
        "dense advance() allocated {dense_allocs} times after warm-up"
    );

    // --- geometric-MEG (grid walk, square metric) -------------------------
    let params = GeometricMegParams::new(512, 1.5, 4.0);
    let mut geo = GeometricMeg::from_params(params, 11);
    for _ in 0..100 {
        geo.advance();
    }
    let (geo_allocs, geo_edges) = allocations_during(|| {
        let mut total = 0usize;
        for _ in 0..200 {
            total += geo.advance().num_edges();
        }
        total
    });
    assert!(geo_edges > 0, "geometric workload degenerated");
    assert_eq!(
        geo_allocs, 0,
        "geometric advance() allocated {geo_allocs} times after warm-up"
    );
}
